"""High-level facade: one object that does everything the library offers.

:class:`SpatialCollection` wraps a dataset (MBRs, optionally exact
geometries) together with a two-layer grid index and exposes every query
the repo implements through one coherent interface — the entry point a
downstream application would actually use:

* window / disk / convex-polygon range queries (MBR-level or exact);
* k-nearest neighbours;
* spatial joins against another collection;
* inserts and deletes;
* selectivity estimates, granularity auto-tuning, persistence.

Example::

    from repro.api import SpatialCollection
    from repro.datasets import generate_uniform_rects

    col = SpatialCollection.from_dataset(generate_uniform_rects(100_000))
    hits = col.window(0.2, 0.2, 0.3, 0.3)
    near = col.knn(0.5, 0.5, k=10)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.datasets.queries import DiskQuery
from repro.errors import InvalidQueryError
from repro.geometry.mbr import Rect
from repro.geometry.predicates import Geometry
from repro.core.estimate import SelectivityEstimator
from repro.core.join import two_layer_spatial_join
from repro.core.knn import knn_query
from repro.core.ranges import ConvexPolygonRange, convex_range_query
from repro.core.refinement import RefinementEngine
from repro.core.tuning import suggest_partitions
from repro.core.two_layer import TwoLayerGrid
from repro.core.two_layer_plus import TwoLayerPlusGrid
from repro.obs import tracing as _tracing
from repro.obs.profiler import Profile
from repro.stats import QueryStats

__all__ = ["SpatialCollection"]


class SpatialCollection:
    """A queryable collection of spatial objects over a two-layer grid."""

    def __init__(
        self,
        data: RectDataset,
        partitions_per_dim: "int | None" = None,
        decomposed: bool = False,
        domain: "Rect | None" = None,
    ):
        self.data = data
        if domain is None:
            domain = self._auto_domain(data)
        if partitions_per_dim is None:
            if len(data):
                partitions_per_dim = suggest_partitions(
                    data, domain_extent=max(domain.width, domain.height)
                )
            else:
                partitions_per_dim = 16
        index_cls = TwoLayerPlusGrid if decomposed else TwoLayerGrid
        self.index = index_cls.build(
            data, partitions_per_dim=partitions_per_dim, domain=domain
        )
        self._refiner = RefinementEngine(self.index, data)
        self._estimator: "SelectivityEstimator | None" = None
        self._profile: "Profile | None" = None

    @staticmethod
    def _auto_domain(data: RectDataset) -> Rect:
        """The grid domain for arbitrary (non-normalised) coordinates.

        Real datasets arrive in metres, degrees or pixels; clamping them
        into a unit grid would pile everything into edge tiles (correct
        but slow).  The domain is the data's MBR padded by 1% per side —
        the padding keeps later inserts near the boundary in play.
        """
        if len(data) == 0:
            return Rect(0.0, 0.0, 1.0, 1.0)
        mbr = data.mbr()
        pad_x = max(mbr.width, 1e-9) * 0.01
        pad_y = max(mbr.height, 1e-9) * 0.01
        return Rect(
            mbr.xl - pad_x, mbr.yl - pad_y, mbr.xu + pad_x, mbr.yu + pad_y
        )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dataset(cls, data: RectDataset, **kwargs) -> "SpatialCollection":
        """Wrap an existing :class:`RectDataset`."""
        return cls(data, **kwargs)

    @classmethod
    def from_geometries(
        cls, geometries: Iterable[Geometry], **kwargs
    ) -> "SpatialCollection":
        """Index exact geometries (their MBRs drive the filtering step)."""
        return cls(RectDataset.from_geometries(geometries), **kwargs)

    @classmethod
    def from_rects(cls, rects: Sequence[Rect], **kwargs) -> "SpatialCollection":
        return cls(RectDataset.from_rects(rects), **kwargs)

    # -- persistence -------------------------------------------------------

    def save(
        self, path, *, format: str = "columnar", if_dirty: str = "compact"
    ) -> None:
        """Persist the collection (index + dataset) to one archive.

        The default ``format="columnar"`` writes the memmap-native
        container (:mod:`repro.core.format`): :meth:`load` then maps it
        in milliseconds regardless of size and pages rows in lazily,
        which is what lets ``python -m repro --serve --index PATH`` boot
        a multi-GB index instantly and shard workers share one page
        cache.  ``format="npz"`` keeps the legacy compressed archive.
        A loaded collection answers every query identically — no
        re-replication or re-sorting on process start.  ``if_dirty``
        controls saving with un-compacted updates (``"compact"`` folds
        them first, ``"error"`` raises).  Collections carrying exact
        geometries are refused (archives store MBRs only).
        """
        from repro.core.persistence import save_collection

        save_collection(
            self.index, self.data, path, format=format, if_dirty=if_dirty
        )

    @classmethod
    def load(cls, path, timings: "dict | None" = None) -> "SpatialCollection":
        """Restore a collection written by :meth:`save` without rebuilding.

        The on-disk format is sniffed from the file: columnar containers
        memmap in place, legacy npz archives decompress.  ``timings``
        (optional dict) receives the boot split — ``read_ms`` vs
        ``build_ms`` — which ``--serve --index`` surfaces in the
        ``stats`` verb and the serving benchmark records.
        """
        from repro.core.persistence import load_collection

        index, data = load_collection(path, timings=timings)
        col = cls.__new__(cls)
        col.data = data
        col.index = index
        col._refiner = RefinementEngine(index, data)
        col._estimator = None
        col._profile = None
        return col

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return (
            f"SpatialCollection(n={len(self)}, "
            f"grid={self.index.grid.nx}x{self.index.grid.ny}, "
            f"exact_geometries={self.data.geometries is not None})"
        )

    def describe(self) -> dict:
        """Summary statistics of the collection and its index."""
        avg_w, avg_h = (
            self.data.average_extents() if len(self.data) else (0.0, 0.0)
        )
        return {
            "objects": len(self.data),
            "partitions_per_dim": self.index.grid.nx,
            "replicas": self.index.replica_count,
            "replication_ratio": self.index.replica_count / max(len(self.data), 1),
            "class_counts": self.index.class_counts(),
            "avg_extent": (avg_w, avg_h),
            "index_bytes": self.index.nbytes,
        }

    # -- profiling ---------------------------------------------------------------

    @contextmanager
    def profile(self) -> Iterator[Profile]:
        """Profile every query issued inside the block.

        Activates a tracer (per-phase spans) and a metrics registry
        (per-kind latency histograms + merged :class:`QueryStats`) for
        the duration of the block and yields the live
        :class:`~repro.obs.profiler.Profile`::

            with col.profile() as prof:
                col.window(0.2, 0.2, 0.3, 0.3)
                col.knn(0.5, 0.5, k=10)
            print(prof.span_tree())
            report = prof.summary()   # p50/p95/p99 latencies, stats, phases

        Profiles nest: the innermost active profile captures the
        queries.  Queries outside any block run on the fast path.
        """
        prof = Profile()
        prev = self._profile
        self._profile = prof
        try:
            with _tracing.activate(prof.tracer):
                yield prof
        finally:
            self._profile = prev

    # -- EXPLAIN -----------------------------------------------------------------

    def explain(
        self,
        query: "Rect | DiskQuery | Sequence[float] | None" = None,
        knn: "tuple[float, float, int] | None" = None,
        join: "SpatialCollection | None" = None,
        exact: bool = False,
        predicate: str = "intersects",
        partitions_per_dim: "int | None" = None,
    ):
        """Run one query under EXPLAIN and return its
        :class:`~repro.obs.explain.QueryPlan`.

        Exactly one query form must be given:

        * ``query`` — a :class:`Rect` (or 4-sequence ``(xl, yl, xu, yu)``)
          for a window query, or a :class:`DiskQuery` for a disk query;
          ``exact`` / ``predicate`` select the same variants as
          :meth:`window` / :meth:`disk`;
        * ``knn=(cx, cy, k)`` — a k-nearest-neighbour query;
        * ``join=other_collection`` — a two-layer spatial join.

        The plan carries per-class tile scans, candidate flow per phase,
        duplicate and comparison accounting, and per-phase wall-clock;
        print it (``str(plan)``) or export it (``plan.to_json()``).
        """
        given = sum(x is not None for x in (query, knn, join))
        if given != 1:
            raise InvalidQueryError(
                "explain() needs exactly one of query=, knn= or join="
            )
        if knn is not None:
            from repro.obs.explain import explain_knn

            cx, cy, k = knn
            if exact:
                raise InvalidQueryError(
                    "EXPLAIN supports the MBR-level (filtering-step) kNN only"
                )
            return explain_knn(self.index, self.data, float(cx), float(cy), int(k))
        if join is not None:
            from repro.obs.explain import explain_join

            ppd = (
                partitions_per_dim
                if partitions_per_dim is not None
                else self.index.grid.nx
            )
            # accept either a SpatialCollection or a bare RectDataset
            other = getattr(join, "data", join)
            return explain_join(self.data, other, partitions_per_dim=ppd)
        if isinstance(query, DiskQuery):
            return self._explain_disk(query, exact)
        if not isinstance(query, Rect):
            xl, yl, xu, yu = query  # type: ignore[misc]
            query = Rect(float(xl), float(yl), float(xu), float(yu))
        return self._explain_window(query, exact, predicate)

    def _explain_window(self, window: Rect, exact: bool, predicate: str):
        from repro.obs.explain import explain_window

        if predicate == "within":
            if exact:
                raise InvalidQueryError(
                    "'within' is already exact at the MBR level"
                )
            return explain_window(
                self.index,
                window,
                runner=lambda s: self.index.window_query_within(window, s),
                kind="window[within]",
            )
        if predicate != "intersects":
            raise InvalidQueryError(
                f"unknown predicate {predicate!r}; expected 'intersects' or 'within'"
            )
        if exact:
            return explain_window(
                self.index,
                window,
                runner=lambda s: self._refiner.window(
                    window, mode="refavoid_plus", stats=s
                ),
                kind="window[exact]",
            )
        return explain_window(self.index, window)

    def _explain_disk(self, query: DiskQuery, exact: bool):
        from repro.obs.explain import explain_disk

        if exact:
            return explain_disk(
                self.index,
                query,
                runner=lambda s: self._refiner.disk(
                    query, mode="refavoid", stats=s
                ),
            )
        return explain_disk(self.index, query)

    def _run_query(self, kind: str, fn, stats: "QueryStats | None") -> np.ndarray:
        """Run ``fn(stats)``; under an active profile, also record the
        query's latency and work counters."""
        prof = self._profile
        if prof is None:
            return fn(stats)
        with prof.measure(kind) as local:
            out = fn(local)
        if stats is not None:
            stats.merge(local)
        return out

    # -- queries -----------------------------------------------------------------

    def window(
        self,
        xl: float,
        yl: float,
        xu: float,
        yu: float,
        exact: bool = False,
        predicate: str = "intersects",
        stats: "QueryStats | None" = None,
        explain: bool = False,
    ) -> np.ndarray:
        """Objects matching the window.

        ``predicate="intersects"`` (default) or ``"within"`` (objects
        fully contained in the window).  ``exact=True`` runs the full
        filter + Lemma 5 secondary filter + refinement pipeline
        (intersects only — an MBR within the window implies the geometry
        is within it, so ``within`` needs no refinement).
        ``explain=True`` returns a :class:`~repro.obs.explain.QueryPlan`
        instead of the result ids.
        """
        window = Rect(xl, yl, xu, yu)
        if explain:
            return self._explain_window(window, exact, predicate)
        if predicate == "within":
            if exact:
                raise InvalidQueryError(
                    "'within' is already exact at the MBR level"
                )
            return self._run_query(
                "window", lambda s: self.index.window_query_within(window, s), stats
            )
        if predicate != "intersects":
            raise InvalidQueryError(
                f"unknown predicate {predicate!r}; expected 'intersects' or 'within'"
            )
        if exact:
            return self._run_query(
                "window",
                lambda s: self._refiner.window(
                    window, mode="refavoid_plus", stats=s
                ),
                stats,
            )
        return self._run_query(
            "window", lambda s: self.index.window_query(window, s), stats
        )

    def disk(
        self,
        cx: float,
        cy: float,
        radius: float,
        exact: bool = False,
        stats: "QueryStats | None" = None,
        explain: bool = False,
    ) -> np.ndarray:
        """Objects within ``radius`` of the centre (exact or MBR-level).

        ``explain=True`` returns a :class:`~repro.obs.explain.QueryPlan`.
        """
        query = DiskQuery(cx, cy, radius)
        if explain:
            return self._explain_disk(query, exact)
        if exact:
            return self._run_query(
                "disk",
                lambda s: self._refiner.disk(query, mode="refavoid", stats=s),
                stats,
            )
        return self._run_query(
            "disk", lambda s: self.index.disk_query(query, s), stats
        )

    def polygon(
        self, vertices: Sequence[tuple[float, float]], stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Objects whose MBR intersects a convex polygon range (§IV-E)."""
        poly = ConvexPolygonRange(vertices)
        return self._run_query(
            "polygon", lambda s: convex_range_query(self.index, poly, s), stats
        )

    def knn(
        self,
        cx: float,
        cy: float,
        k: int,
        exact: bool = False,
        explain: bool = False,
    ) -> np.ndarray:
        """The ``k`` objects nearest to a point.

        ``exact=False`` ranks by MBR minimum distance (the filtering-step
        metric); ``exact=True`` refines with true geometry distances
        (filter-and-refine kNN).  ``explain=True`` returns a
        :class:`~repro.obs.explain.QueryPlan` (MBR-level kNN only).
        """
        if explain:
            return self.explain(knn=(cx, cy, k), exact=exact)
        if exact:
            return self._run_query(
                "knn", lambda s: self._refiner.knn(cx, cy, k), None
            )
        return self._run_query(
            "knn", lambda s: knn_query(self.index, self.data, cx, cy, k, s), None
        )

    def join(
        self,
        other: "SpatialCollection",
        partitions_per_dim: "int | None" = None,
        explain: bool = False,
    ) -> np.ndarray:
        """All intersecting (self, other) id pairs, duplicate-free.

        ``explain=True`` returns a :class:`~repro.obs.explain.QueryPlan`.
        """
        if explain:
            return self.explain(join=other, partitions_per_dim=partitions_per_dim)
        if partitions_per_dim is None:
            partitions_per_dim = self.index.grid.nx
        ppd = partitions_per_dim
        # accept either a SpatialCollection or a bare RectDataset
        other_data = getattr(other, "data", other)
        return self._run_query(
            "join",
            lambda s: two_layer_spatial_join(
                self.data, other_data, partitions_per_dim=ppd, stats=s
            ),
            None,
        )

    def count(self, xl: float, yl: float, xu: float, yu: float) -> int:
        """Exact result count of a window query (no id materialisation)."""
        return self.index.count_window(Rect(xl, yl, xu, yu))

    def estimate(self, xl: float, yl: float, xu: float, yu: float) -> float:
        """Histogram-based estimate of a window query's result count."""
        if self._estimator is None:
            avg = self.data.average_extents() if len(self.data) else (0.0, 0.0)
            self._estimator = SelectivityEstimator(self.index, avg_extent=avg)
        return self._estimator.estimate_window(Rect(xl, yl, xu, yu))

    # -- maintenance ---------------------------------------------------------------

    def insert(self, rect: Rect, geometry: "Geometry | None" = None) -> int:
        """Insert a new object; returns its id.

        Collections carrying exact geometries require one for the new
        object (refined queries would otherwise silently degrade).
        """
        if self.data.geometries is not None and geometry is None:
            raise InvalidQueryError(
                "this collection stores exact geometries; provide one"
            )
        new_id = self.index.insert(rect)
        self.data = RectDataset(
            np.append(self.data.xl, rect.xl),
            np.append(self.data.yl, rect.yl),
            np.append(self.data.xu, rect.xu),
            np.append(self.data.yu, rect.yu),
            None
            if self.data.geometries is None
            else self.data.geometries + [geometry],
        )
        self._refiner = RefinementEngine(self.index, self.data)
        self._estimator = None
        return new_id

    def delete(self, obj_id: int) -> bool:
        """Remove an object by id (its MBR is looked up internally).

        The dataset row is kept (ids are positional) but the index entry
        disappears, so the object stops matching any query.
        """
        if not 0 <= obj_id < len(self.data):
            return False
        found = self.index.delete(self.data.rect(obj_id), obj_id)
        if found:
            self._estimator = None
        return found
