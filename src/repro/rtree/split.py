"""Node-split algorithms: Guttman quadratic [12] and R* split [3].

Both take the (overflowing) entry set of a node and return the two entry
groups.  The classic R-tree uses the quadratic split; the R*-tree chooses
a split axis by margin minimisation and a distribution by overlap/area.
"""

from __future__ import annotations

from repro.rtree.node import area, margin, overlap, union_bounds

__all__ = ["quadratic_split", "rstar_split"]

Bound = tuple[float, float, float, float]


def quadratic_split(
    bounds: list[Bound], payloads: list, min_fill: int
) -> tuple[list[int], list[int]]:
    """Guttman's quadratic split; returns the two groups as index lists.

    Seeds are the pair wasting the most area if grouped together; the
    remaining entries are assigned one at a time to the group whose MBR
    needs the least enlargement, with a fill guarantee of ``min_fill``.
    """
    n = len(bounds)
    # Pick seeds: maximise dead area of the pair's union.
    worst = -1.0
    seed_a, seed_b = 0, 1
    for i in range(n):
        for j in range(i + 1, n):
            waste = area(union_bounds(bounds[i], bounds[j])) - area(
                bounds[i]
            ) - area(bounds[j])
            if waste > worst:
                worst = waste
                seed_a, seed_b = i, j

    group_a = [seed_a]
    group_b = [seed_b]
    mbr_a = bounds[seed_a]
    mbr_b = bounds[seed_b]
    remaining = [k for k in range(n) if k != seed_a and k != seed_b]

    while remaining:
        # Fill guarantee: if one group must take everything left, do it.
        if len(group_a) + len(remaining) == min_fill:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == min_fill:
            group_b.extend(remaining)
            break
        # Pick the entry with the strongest preference for one group.
        best_k = -1
        best_diff = -1.0
        best_pick = 0
        for pos, k in enumerate(remaining):
            grow_a = area(union_bounds(mbr_a, bounds[k])) - area(mbr_a)
            grow_b = area(union_bounds(mbr_b, bounds[k])) - area(mbr_b)
            diff = abs(grow_a - grow_b)
            if diff > best_diff:
                best_diff = diff
                best_k = pos
                best_pick = 0 if grow_a < grow_b else 1
        k = remaining.pop(best_k)
        if best_pick == 0:
            group_a.append(k)
            mbr_a = union_bounds(mbr_a, bounds[k])
        else:
            group_b.append(k)
            mbr_b = union_bounds(mbr_b, bounds[k])
    return group_a, group_b


def _distribution_stats(bounds: list[Bound], order: list[int], min_fill: int):
    """Yield (split_point, mbr_left, mbr_right) for each legal distribution."""
    n = len(order)
    prefix: list[Bound] = [bounds[order[0]]]
    for k in range(1, n):
        prefix.append(union_bounds(prefix[-1], bounds[order[k]]))
    suffix: list[Bound] = [None] * n  # type: ignore[list-item]
    suffix[n - 1] = bounds[order[n - 1]]
    for k in range(n - 2, -1, -1):
        suffix[k] = union_bounds(suffix[k + 1], bounds[order[k]])
    for split in range(min_fill, n - min_fill + 1):
        yield split, prefix[split - 1], suffix[split]


def rstar_split(
    bounds: list[Bound], payloads: list, min_fill: int
) -> tuple[list[int], list[int]]:
    """R*-tree split: margin-minimal axis, then overlap-minimal distribution."""
    n = len(bounds)
    orders_by_axis: list[list[list[int]]] = []
    # Axis 0 = x (sort by xl then by xu), axis 1 = y.
    for lo, hi in ((0, 2), (1, 3)):
        order_low = sorted(range(n), key=lambda k: (bounds[k][lo], bounds[k][hi]))
        order_high = sorted(range(n), key=lambda k: (bounds[k][hi], bounds[k][lo]))
        orders_by_axis.append([order_low, order_high])

    # Choose axis: minimal sum of margins over all distributions.
    best_axis = 0
    best_margin_sum = float("inf")
    for axis, orders in enumerate(orders_by_axis):
        margin_sum = 0.0
        for order in orders:
            for _, left, right in _distribution_stats(bounds, order, min_fill):
                margin_sum += margin(left) + margin(right)
        if margin_sum < best_margin_sum:
            best_margin_sum = margin_sum
            best_axis = axis

    # Choose distribution on that axis: minimal overlap, ties by area.
    best: "tuple[float, float, list[int], int] | None" = None
    for order in orders_by_axis[best_axis]:
        for split, left, right in _distribution_stats(bounds, order, min_fill):
            ov = overlap(left, right)
            ar = area(left) + area(right)
            if best is None or (ov, ar) < (best[0], best[1]):
                best = (ov, ar, order, split)
    assert best is not None
    _, _, order, split = best
    return order[:split], order[split:]
