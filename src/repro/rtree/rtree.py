"""In-memory R-tree and R*-tree — the paper's DOP competitors (Table V).

* :class:`RTree` — STR-bulk-loaded [17] with Guttman-quadratic dynamic
  inserts [12]; stands in for Boost.Geometry's packed R-tree.
* :class:`RStarTree` — built by one-at-a-time R* insertion [3]: overlap-
  minimising subtree choice, forced reinsertion, margin-based splits.

Both use fanout 16 for inner and leaf nodes (the paper's best-performing
configuration).  Data-oriented partitioning keeps object placement unique,
so queries never deduplicate; the cost is tree traversal and overlapping
node regions.
"""

from __future__ import annotations

import math

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.datasets.queries import DiskQuery
from repro.errors import InvalidGridError, InvalidQueryError
from repro.geometry.mbr import Rect
from repro.rtree.node import (
    DEFAULT_FANOUT,
    Node,
    area,
    overlap,
    union_bounds,
)
from repro.rtree.split import quadratic_split, rstar_split
from repro.rtree.str_packing import str_pack
from repro.obs.tracing import span as trace_span
from repro.stats import QueryStats

__all__ = ["RTree", "RStarTree"]

_EMPTY_IDS = np.empty(0, dtype=np.int64)

#: R* forced-reinsert fraction of a node's entries (30% of M, per [3]).
_REINSERT_FRACTION = 0.3

Bound = tuple[float, float, float, float]


class RTree:
    """Height-balanced R-tree with STR bulk loading and quadratic splits."""

    #: split algorithm used on node overflow (overridden by RStarTree).
    _split_algorithm = staticmethod(quadratic_split)

    #: EXPLAIN accounting mode: unique (DOP) placement, no duplicates.
    dedup_strategy = "none"

    def __init__(self, fanout: int = DEFAULT_FANOUT):
        if fanout < 4:
            raise InvalidGridError(f"fanout must be >= 4, got {fanout}")
        self.fanout = fanout
        self.min_fill = max(2, (fanout * 4) // 10)
        self._root = Node(leaf=True, level=0)
        self._n_objects = 0
        self._reinserted_levels: set[int] = set()

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        data: RectDataset,
        fanout: int = DEFAULT_FANOUT,
        packing: str = "str",
    ) -> "RTree":
        """Bulk load: ``"str"`` [17] (the paper's configuration) or
        ``"hilbert"`` (Kamel & Faloutsos curve packing)."""
        tree = cls(fanout)
        if packing == "str":
            tree._root = str_pack(data, fanout)
        elif packing == "hilbert":
            from repro.rtree.hilbert import hilbert_pack

            tree._root = hilbert_pack(data, fanout)
        else:
            raise InvalidGridError(
                f"unknown packing {packing!r}; expected 'str' or 'hilbert'"
            )
        tree._n_objects = len(data)
        return tree

    def insert(self, rect: Rect, obj_id: "int | None" = None) -> int:
        """Dynamic insert (Table VI's update workload)."""
        if obj_id is None:
            obj_id = self._n_objects
        self._n_objects = max(self._n_objects, obj_id + 1)
        self._reinserted_levels = set()
        self._insert_at_level((rect.xl, rect.yl, rect.xu, rect.yu), obj_id, 0)
        return obj_id

    def _insert_at_level(self, bound: Bound, payload, target_level: int) -> None:
        node = self._root
        path: list[tuple[Node, int]] = []
        while node.level > target_level:
            i = self._choose_subtree(node, bound)
            path.append((node, i))
            node.update_bound(i, union_bounds(node.bounds[i], bound))
            node = node.payloads[i]
        node.add(bound, payload)
        self._handle_overflow(node, path)

    def _handle_overflow(self, node: Node, path: list[tuple[Node, int]]) -> None:
        while len(node) > self.fanout:
            sibling = self._overflow_treatment(node, path)
            if sibling is None:
                return  # forced reinsertion resolved the overflow
            if path:
                parent, i = path.pop()
                parent.update_bound(i, node.mbr())
                parent.add(sibling.mbr(), sibling)
                node = parent
            else:
                new_root = Node(leaf=False, level=node.level + 1)
                new_root.add(node.mbr(), node)
                new_root.add(sibling.mbr(), sibling)
                self._root = new_root
                return

    def _overflow_treatment(
        self, node: Node, path: list[tuple[Node, int]]
    ) -> "Node | None":
        """Split the node (R* may reinsert instead; see subclass)."""
        return self._split(node)

    def _split(self, node: Node) -> Node:
        group_a, group_b = type(self)._split_algorithm(
            node.bounds, node.payloads, self.min_fill
        )
        bounds = node.bounds
        payloads = node.payloads
        sibling = Node(leaf=node.leaf, level=node.level)
        sibling.replace_entries(
            [bounds[k] for k in group_b], [payloads[k] for k in group_b]
        )
        node.replace_entries(
            [bounds[k] for k in group_a], [payloads[k] for k in group_a]
        )
        return sibling

    def _choose_subtree(self, node: Node, bound: Bound) -> int:
        """Guttman: least area enlargement, ties by smallest area."""
        best = 0
        best_key = (math.inf, math.inf)
        for i, entry in enumerate(node.bounds):
            ar = area(entry)
            grow = area(union_bounds(entry, bound)) - ar
            key = (grow, ar)
            if key < best_key:
                best_key = key
                best = i
        return best

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        return self._n_objects

    @property
    def height(self) -> int:
        return self._root.level + 1

    @property
    def node_count(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.leaf:
                stack.extend(node.payloads)
        return count

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(objects={self._n_objects}, "
            f"height={self.height}, nodes={self.node_count}, fanout={self.fanout})"
        )

    def explain_partitions(
        self, window: Rect
    ) -> list[tuple[Rect, np.ndarray]]:
        """EXPLAIN introspection: ``(leaf MBR, stored ids)`` for every
        leaf a window descent of ``window`` reaches."""
        if self._n_objects == 0 or len(self._root) == 0:
            return []
        out: list[tuple[Rect, np.ndarray]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                ids = node.id_array()
                if ids.shape[0]:
                    out.append((Rect(*node.mbr()), ids))
                continue
            m = node.matrix()
            mask = (
                (m[:, 2] >= window.xl)
                & (m[:, 0] <= window.xu)
                & (m[:, 3] >= window.yl)
                & (m[:, 1] <= window.yu)
            )
            payloads = node.payloads
            stack.extend(payloads[int(k)] for k in np.flatnonzero(mask))
        return out

    # -- queries ------------------------------------------------------------------

    def window_query(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Ids of all indexed MBRs intersecting ``window``."""
        if self._n_objects == 0 or len(self._root) == 0:
            return _EMPTY_IDS
        with trace_span("query.window"):
            with trace_span("filter.lookup"):
                # Tree descent and leaf scans interleave; the root push is
                # the only separable planning step.
                stack = [self._root]
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                while stack:
                    node = stack.pop()
                    m = node.matrix()
                    if stats is not None:
                        stats.partitions_visited += 1
                        stats.comparisons += 4 * m.shape[0]
                        stats.visit_class("leaf" if node.leaf else "node")
                    mask = (
                        (m[:, 2] >= window.xl)
                        & (m[:, 0] <= window.xu)
                        & (m[:, 3] >= window.yl)
                        & (m[:, 1] <= window.yu)
                    )
                    if node.leaf:
                        if stats is not None:
                            stats.rects_scanned += m.shape[0]
                        hit = node.id_array()[mask]
                        if hit.shape[0]:
                            pieces.append(hit)
                    else:
                        payloads = node.payloads
                        stack.extend(payloads[int(k)] for k in np.flatnonzero(mask))
            with trace_span("dedup"):
                pass  # unique placement (DOP) — nothing to deduplicate
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def knn_query(
        self, cx: float, cy: float, k: int, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Ids of the ``k`` MBRs nearest to ``(cx, cy)`` (best-first search).

        Classic branch-and-bound kNN (Hjaltason & Samet): a priority queue
        over nodes and entries ordered by minimum distance; nodes are
        expanded lazily, so only the neighbourhood of the query point is
        visited.  Distances are MBR minimum distances; ties break by id.
        """
        import heapq

        if k < 1:
            raise InvalidQueryError(f"k must be >= 1, got {k}")
        if self._n_objects == 0 or len(self._root) == 0:
            return _EMPTY_IDS

        def node_dists(node: Node) -> np.ndarray:
            m = node.matrix()
            dx = np.maximum(np.maximum(m[:, 0] - cx, 0.0), cx - m[:, 2])
            dy = np.maximum(np.maximum(m[:, 1] - cy, 0.0), cy - m[:, 3])
            return np.hypot(dx, dy)

        # Heap key: (distance, kind, tie) with kind 0 = node, 1 = object.
        # Nodes expand before equal-distance objects (they can only add
        # objects at >= that distance), and equal-distance objects pop in
        # id order — fully deterministic results.
        counter = 0
        heap: list[tuple[float, int, int, object]] = [(0.0, 0, counter, self._root)]
        results: list[int] = []
        knn_span = trace_span("query.knn")
        scan_span = trace_span("filter.scan")
        with knn_span, scan_span:
            self._knn_best_first(heap, results, k, node_dists, stats)
        return np.asarray(results, dtype=np.int64)

    def _knn_best_first(self, heap, results, k, node_dists, stats) -> None:
        import heapq

        counter = len(heap)
        while heap and len(results) < k:
            dist, kind, tie, item = heapq.heappop(heap)
            if kind == 1:
                results.append(tie)
                continue
            node: Node = item  # type: ignore[assignment]
            if stats is not None:
                stats.partitions_visited += 1
                stats.visit_class("leaf" if node.leaf else "node")
            dists = node_dists(node)
            if node.leaf:
                ids = node.id_array()
                if stats is not None:
                    stats.rects_scanned += ids.shape[0]
                for j in range(ids.shape[0]):
                    heapq.heappush(heap, (float(dists[j]), 1, int(ids[j]), None))
            else:
                for j, child in enumerate(node.payloads):
                    counter += 1
                    heapq.heappush(heap, (float(dists[j]), 0, counter, child))

    def disk_query(
        self, query: DiskQuery, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Ids of all indexed MBRs within ``query.radius`` of the centre."""
        if self._n_objects == 0 or len(self._root) == 0:
            return _EMPTY_IDS
        with trace_span("query.disk"):
            with trace_span("filter.lookup"):
                r2 = query.radius * query.radius
                cx, cy = query.cx, query.cy
                stack = [self._root]
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                while stack:
                    node = stack.pop()
                    m = node.matrix()
                    if stats is not None:
                        stats.partitions_visited += 1
                        stats.comparisons += 2 * m.shape[0]
                        stats.visit_class("leaf" if node.leaf else "node")
                    dx = np.maximum(np.maximum(m[:, 0] - cx, 0.0), cx - m[:, 2])
                    dy = np.maximum(np.maximum(m[:, 1] - cy, 0.0), cy - m[:, 3])
                    mask = dx * dx + dy * dy <= r2
                    if node.leaf:
                        if stats is not None:
                            stats.rects_scanned += m.shape[0]
                        hit = node.id_array()[mask]
                        if hit.shape[0]:
                            pieces.append(hit)
                    else:
                        payloads = node.payloads
                        stack.extend(payloads[int(k)] for k in np.flatnonzero(mask))
            with trace_span("dedup"):
                pass  # unique placement (DOP) — nothing to deduplicate
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)


class RStarTree(RTree):
    """R*-tree [3]: overlap-aware insertion with forced reinsertion."""

    _split_algorithm = staticmethod(rstar_split)

    @classmethod
    def build(cls, data: RectDataset, fanout: int = DEFAULT_FANOUT) -> "RStarTree":
        """Insertion build — R*-trees are defined by their insert path."""
        tree = cls(fanout)
        for i in range(len(data)):
            tree.insert(
                Rect(
                    float(data.xl[i]),
                    float(data.yl[i]),
                    float(data.xu[i]),
                    float(data.yu[i]),
                ),
                i,
            )
        tree._n_objects = len(data)
        return tree

    def _choose_subtree(self, node: Node, bound: Bound) -> int:
        """R* choice: overlap enlargement for leaf-parents, else area."""
        if node.level != 1:
            return super()._choose_subtree(node, bound)
        bounds = node.bounds
        n = len(bounds)
        best = 0
        best_key = (math.inf, math.inf, math.inf)
        for i in range(n):
            enlarged = union_bounds(bounds[i], bound)
            before = 0.0
            after = 0.0
            for j in range(n):
                if j == i:
                    continue
                before += overlap(bounds[i], bounds[j])
                after += overlap(enlarged, bounds[j])
            grow = area(enlarged) - area(bounds[i])
            key = (after - before, grow, area(bounds[i]))
            if key < best_key:
                best_key = key
                best = i
        return best

    def _overflow_treatment(
        self, node: Node, path: list[tuple[Node, int]]
    ) -> "Node | None":
        """First overflow per level per insert: reinsert 30%; else split."""
        if path and node.level not in self._reinserted_levels:
            self._reinserted_levels.add(node.level)
            self._reinsert(node, path)
            return None
        return self._split(node)

    def _reinsert(self, node: Node, path: list[tuple[Node, int]]) -> None:
        """Remove the entries farthest from the node centre and re-add them."""
        n = len(node)
        p = max(1, int(round(n * _REINSERT_FRACTION)))
        node_mbr = node.mbr()
        ncx = (node_mbr[0] + node_mbr[2]) / 2.0
        ncy = (node_mbr[1] + node_mbr[3]) / 2.0

        def centre_dist(bound: Bound) -> float:
            ecx = (bound[0] + bound[2]) / 2.0
            ecy = (bound[1] + bound[3]) / 2.0
            return (ecx - ncx) ** 2 + (ecy - ncy) ** 2

        order = sorted(range(n), key=lambda k: centre_dist(node.bounds[k]))
        keep = order[: n - p]
        eject = order[n - p :]
        removed = [(node.bounds[k], node.payloads[k]) for k in eject]
        node.replace_entries(
            [node.bounds[k] for k in keep], [node.payloads[k] for k in keep]
        )
        # Tighten ancestor bounds after the removal.
        child = node
        for parent, i in reversed(path):
            parent.update_bound(i, child.mbr())
            child = parent
        # Re-add at the same level (close reinsert, [3]).
        level = node.level
        for bound, payload in removed:
            self._insert_at_level(bound, payload, level)
