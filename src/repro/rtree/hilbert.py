"""Hilbert-curve utilities and Hilbert-packed R-tree bulk loading.

STR [17] is the paper's bulk loader; Hilbert packing (Kamel & Faloutsos)
is the other classic: sort rectangle centres by their position along a
Hilbert space-filling curve and pack consecutive runs of ``fanout``
entries into leaves.  The Hilbert curve's locality gives compact leaves
without STR's slab artefacts on skewed data; the benchmark suite's
ablations let users compare both.

The curve mapping is the iterative bit-interleaving algorithm
(Hamilton's compact Hilbert indices for 2D), fully vectorised: ``order``
bits per axis map the unit square onto ``[0, 4**order)``.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.errors import InvalidGridError
from repro.rtree.node import Node
from repro.rtree.str_packing import _pack_level

__all__ = ["hilbert_index", "hilbert_pack", "DEFAULT_CURVE_ORDER"]

DEFAULT_CURVE_ORDER = 16


def hilbert_index(
    xs: np.ndarray, ys: np.ndarray, order: int = DEFAULT_CURVE_ORDER
) -> np.ndarray:
    """Hilbert-curve rank of points in the unit square (vectorised).

    ``order`` bits of precision per axis; coordinates are clamped into
    ``[0, 1]``.  Returns ``uint64`` ranks in ``[0, 4**order)``.
    """
    if not 1 <= order <= 31:
        raise InvalidGridError(f"curve order must be in [1, 31], got {order}")
    n = 1 << order
    x = np.clip((np.asarray(xs, dtype=np.float64) * n), 0, n - 1).astype(np.uint64)
    y = np.clip((np.asarray(ys, dtype=np.float64) * n), 0, n - 1).astype(np.uint64)

    rank = np.zeros(x.shape[0], dtype=np.uint64)
    s = np.uint64(n >> 1)
    one = np.uint64(1)
    zero = np.uint64(0)
    while s > 0:
        rx = np.where((x & s) > 0, one, zero)
        ry = np.where((y & s) > 0, one, zero)
        rank += s * s * ((np.uint64(3) * rx) ^ ry)
        # Rotate the quadrant (the Hilbert flip) — vectorised branch-free.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - one - x, x)
        y_f = np.where(flip, s - one - y, y)
        x, y = np.where(swap, y_f, x_f), np.where(swap, x_f, y_f)
        s >>= one
    return rank


def hilbert_pack(
    data: RectDataset, fanout: int, order: int = DEFAULT_CURVE_ORDER
) -> Node:
    """Bulk-load an R-tree by Hilbert-sorting rectangle centres."""
    n = len(data)
    if n == 0:
        return Node(leaf=True, level=0)
    cx = (data.xl + data.xu) / 2.0
    cy = (data.yl + data.yu) / 2.0
    # Normalise centres into the unit square before curve mapping.
    x0, x1 = float(cx.min()), float(cx.max())
    y0, y1 = float(cy.min()), float(cy.max())
    span_x = (x1 - x0) or 1.0
    span_y = (y1 - y0) or 1.0
    ranks = hilbert_index((cx - x0) / span_x, (cy - y0) / span_y, order)
    by_rank = np.argsort(ranks, kind="stable")

    bounds = np.stack([data.xl, data.yl, data.xu, data.yu], axis=1)[by_rank]
    payloads: list = [int(i) for i in by_rank]
    level = 0
    nodes: list[Node] = []
    for off in range(0, n, fanout):
        node = Node(leaf=True, level=0)
        run = slice(off, off + fanout)
        node.replace_entries(
            [tuple(map(float, b)) for b in bounds[run]], payloads[run.start : run.stop]
        )
        nodes.append(node)
    while len(nodes) > 1:
        level += 1
        upper_bounds = np.asarray([node.mbr() for node in nodes], dtype=np.float64)
        nodes = _pack_level(upper_bounds, list(nodes), level, leaf=False, fanout=fanout)
    return nodes[0]
