"""Data-oriented partitioning competitors: R-tree (STR) and R*-tree."""

from repro.rtree.hilbert import hilbert_index, hilbert_pack
from repro.rtree.node import DEFAULT_FANOUT, Node
from repro.rtree.rtree import RStarTree, RTree
from repro.rtree.split import quadratic_split, rstar_split
from repro.rtree.str_packing import str_pack

__all__ = [
    "RTree",
    "RStarTree",
    "Node",
    "DEFAULT_FANOUT",
    "str_pack",
    "hilbert_pack",
    "hilbert_index",
    "quadratic_split",
    "rstar_split",
]
