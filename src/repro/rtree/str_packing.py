"""STR (Sort-Tile-Recursive) R-tree bulk loading [17].

The paper's ``R-tree`` competitor is an STR-bulk-loaded Boost.Geometry
tree with fanout 16.  STR packs rectangles bottom-up: sort by x-centre,
cut into vertical slabs of ``ceil(sqrt(n/fanout))`` runs, sort each slab
by y-centre and pack leaves of ``fanout`` entries; then repeat one level
up on the leaf MBRs until a single root remains.
"""

from __future__ import annotations

import math

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.rtree.node import Node

__all__ = ["str_pack"]


def _pack_level(
    bounds: np.ndarray, payloads: list, level: int, leaf: bool, fanout: int
) -> list[Node]:
    """Pack one tree level from entry bounds (n, 4) and payloads."""
    n = bounds.shape[0]
    n_nodes = math.ceil(n / fanout)
    n_slabs = math.ceil(math.sqrt(n_nodes))
    per_slab = n_slabs * fanout

    cx = (bounds[:, 0] + bounds[:, 2]) / 2.0
    cy = (bounds[:, 1] + bounds[:, 3]) / 2.0
    by_x = np.argsort(cx, kind="stable")

    nodes: list[Node] = []
    for s in range(0, n, per_slab):
        slab = by_x[s : s + per_slab]
        slab = slab[np.argsort(cy[slab], kind="stable")]
        for off in range(0, slab.shape[0], fanout):
            run = slab[off : off + fanout]
            node = Node(leaf=leaf, level=level)
            node.replace_entries(
                [tuple(map(float, bounds[k])) for k in run],
                [payloads[int(k)] for k in run],
            )
            nodes.append(node)
    return nodes


def str_pack(data: RectDataset, fanout: int) -> Node:
    """Bulk-load an R-tree over ``data``; returns the root node."""
    n = len(data)
    if n == 0:
        return Node(leaf=True, level=0)
    bounds = np.stack([data.xl, data.yl, data.xu, data.yu], axis=1)
    payloads: list = list(range(n))
    level = 0
    nodes = _pack_level(bounds, payloads, level, leaf=True, fanout=fanout)
    while len(nodes) > 1:
        level += 1
        bounds = np.asarray([node.mbr() for node in nodes], dtype=np.float64)
        payloads = list(nodes)
        nodes = _pack_level(bounds, payloads, level, leaf=False, fanout=fanout)
    return nodes[0]
