"""R-tree node structure.

Nodes keep their entry bounds both as Python lists (cheap single-entry
updates during inserts — the Table VI workload) and as a lazily rebuilt
NumPy ``(k, 4)`` matrix used for vectorised intersection tests during
queries.  A leaf entry's payload is an object id; an internal entry's
payload is a child node.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Node", "DEFAULT_FANOUT"]

#: paper configuration: fanout 16 for inner and leaf nodes.
DEFAULT_FANOUT = 16


class Node:
    """One R-tree node (leaf or internal)."""

    __slots__ = ("leaf", "level", "bounds", "payloads", "_matrix", "_ids")

    def __init__(self, leaf: bool, level: int):
        self.leaf = leaf
        #: leaf nodes are level 0; each parent is one level higher.
        self.level = level
        #: per-entry (xl, yl, xu, yu) tuples.
        self.bounds: list[tuple[float, float, float, float]] = []
        #: per-entry payload: object id (leaf) or child Node (internal).
        self.payloads: list = []
        self._matrix: "np.ndarray | None" = None
        self._ids: "np.ndarray | None" = None

    def __len__(self) -> int:
        return len(self.bounds)

    def add(self, bound: tuple[float, float, float, float], payload) -> None:
        self.bounds.append(bound)
        self.payloads.append(payload)
        self._matrix = None
        self._ids = None

    def replace_entries(self, bounds: list, payloads: list) -> None:
        self.bounds = bounds
        self.payloads = payloads
        self._matrix = None
        self._ids = None

    def update_bound(self, i: int, bound: tuple[float, float, float, float]) -> None:
        self.bounds[i] = bound
        self._matrix = None

    def matrix(self) -> np.ndarray:
        """Entry bounds as a ``(k, 4)`` float matrix (cached)."""
        if self._matrix is None:
            self._matrix = np.asarray(self.bounds, dtype=np.float64).reshape(-1, 4)
        return self._matrix

    def id_array(self) -> np.ndarray:
        """Leaf payloads as an int64 array (cached)."""
        if self._ids is None:
            self._ids = np.asarray(self.payloads, dtype=np.int64)
        return self._ids

    def mbr(self) -> tuple[float, float, float, float]:
        """The tight MBR of all entries."""
        m = self.matrix()
        return (
            float(m[:, 0].min()),
            float(m[:, 1].min()),
            float(m[:, 2].max()),
            float(m[:, 3].max()),
        )

    def __repr__(self) -> str:
        kind = "leaf" if self.leaf else f"inner(level={self.level})"
        return f"Node({kind}, entries={len(self)})"


def union_bounds(
    a: tuple[float, float, float, float], b: tuple[float, float, float, float]
) -> tuple[float, float, float, float]:
    return (min(a[0], b[0]), min(a[1], b[1]), max(a[2], b[2]), max(a[3], b[3]))


def area(b: tuple[float, float, float, float]) -> float:
    return (b[2] - b[0]) * (b[3] - b[1])


def margin(b: tuple[float, float, float, float]) -> float:
    return (b[2] - b[0]) + (b[3] - b[1])


def overlap(
    a: tuple[float, float, float, float], b: tuple[float, float, float, float]
) -> float:
    w = min(a[2], b[2]) - max(a[0], b[0])
    if w <= 0.0:
        return 0.0
    h = min(a[3], b[3]) - max(a[1], b[1])
    if h <= 0.0:
        return 0.0
    return w * h
