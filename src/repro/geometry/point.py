"""Point geometry."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import InvalidGeometryError
from repro.geometry.mbr import Rect

__all__ = ["Point"]


@dataclass(frozen=True, slots=True)
class Point:
    """A 2D point; the degenerate non-point geometry.

    Points appear in the TIGER-derived mixed dataset and as the limit case
    of the paper's ``10**-inf``-area synthetic rectangles.
    """

    x: float
    y: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise InvalidGeometryError(f"non-finite point: ({self.x}, {self.y})")

    def mbr(self) -> Rect:
        """Degenerate (zero-area) MBR of the point."""
        return Rect(self.x, self.y, self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def intersects_rect(self, rect: Rect) -> bool:
        return rect.contains_point(self.x, self.y)

    def intersects_disk(self, cx: float, cy: float, radius: float) -> bool:
        return math.hypot(self.x - cx, self.y - cy) <= radius
