"""Simple-polygon geometry.

EDGES-style objects in the paper are polygons.  The refinement step needs
exact polygon-vs-window and polygon-vs-disk intersection tests.  We support
simple (non-self-intersecting, no holes) polygons, which covers the TIGER
stand-in data this repo generates.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import InvalidGeometryError
from repro.geometry.mbr import Rect
from repro.geometry.segment import (
    point_segment_distance,
    segment_intersects_rect,
    segments_intersect,
)

__all__ = ["Polygon"]


class Polygon:
    """An immutable simple polygon given by its boundary ring.

    The ring is stored without a repeated closing vertex; the closing edge
    from the last vertex back to the first is implicit.
    """

    __slots__ = ("_xs", "_ys", "_mbr")

    def __init__(self, vertices: Sequence[tuple[float, float]]):
        verts = list(vertices)
        # Accept (and strip) an explicitly closed ring.
        if len(verts) >= 2 and verts[0] == verts[-1]:
            verts = verts[:-1]
        if len(verts) < 3:
            raise InvalidGeometryError(
                f"a polygon needs at least 3 distinct vertices, got {len(verts)}"
            )
        xs: list[float] = []
        ys: list[float] = []
        for x, y in verts:
            if not (math.isfinite(x) and math.isfinite(y)):
                raise InvalidGeometryError(f"non-finite vertex: ({x}, {y})")
            xs.append(float(x))
            ys.append(float(y))
        self._xs = tuple(xs)
        self._ys = tuple(ys)
        self._mbr = Rect(min(xs), min(ys), max(xs), max(ys))

    # -- accessors ----------------------------------------------------------

    @property
    def vertices(self) -> list[tuple[float, float]]:
        return list(zip(self._xs, self._ys))

    def __len__(self) -> int:
        return len(self._xs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self._xs == other._xs and self._ys == other._ys

    def __hash__(self) -> int:
        return hash((self._xs, self._ys))

    def __repr__(self) -> str:
        return f"Polygon({len(self)} vertices, mbr={self._mbr.as_tuple()})"

    def mbr(self) -> Rect:
        return self._mbr

    @property
    def area(self) -> float:
        """Unsigned area by the shoelace formula."""
        xs, ys = self._xs, self._ys
        n = len(xs)
        acc = 0.0
        for i in range(n):
            j = (i + 1) % n
            acc += xs[i] * ys[j] - xs[j] * ys[i]
        return abs(acc) / 2.0

    def _edges(self):
        xs, ys = self._xs, self._ys
        n = len(xs)
        for i in range(n):
            j = (i + 1) % n
            yield xs[i], ys[i], xs[j], ys[j]

    # -- predicates ------------------------------------------------------

    def contains_point(self, px: float, py: float) -> bool:
        """Point-in-polygon by ray casting; boundary points count as inside."""
        if not self._mbr.contains_point(px, py):
            return False
        xs, ys = self._xs, self._ys
        n = len(xs)
        inside = False
        j = n - 1
        for i in range(n):
            xi, yi = xs[i], ys[i]
            xj, yj = xs[j], ys[j]
            # Boundary check: point on edge i-j.
            if point_segment_distance(px, py, xi, yi, xj, yj) <= 1e-12:
                return True
            if (yi > py) != (yj > py):
                x_cross = (xj - xi) * (py - yi) / (yj - yi) + xi
                if px < x_cross:
                    inside = not inside
            j = i
        return inside

    def intersects_rect(self, rect: Rect) -> bool:
        """Exact polygon-vs-rectangle intersection (boundary or interior)."""
        if not self._mbr.intersects(rect):
            return False
        # Any boundary edge crossing the rectangle?
        for ax, ay, bx, by in self._edges():
            if segment_intersects_rect(ax, ay, bx, by, rect):
                return True
        # Rectangle entirely inside the polygon?
        if self.contains_point(rect.xl, rect.yl):
            return True
        # Polygon entirely inside the rectangle? (then its MBR is too, and
        # some vertex is inside — but the edge test above already caught
        # every vertex-inside case, so only full containment remains)
        return rect.contains(self._mbr)

    def distance_to_point(self, px: float, py: float) -> float:
        """Distance from a point to the polygon (0 when inside)."""
        if self.contains_point(px, py):
            return 0.0
        best = math.inf
        for ax, ay, bx, by in self._edges():
            d = point_segment_distance(px, py, ax, ay, bx, by)
            if d < best:
                best = d
        return best

    def intersects_disk(self, cx: float, cy: float, radius: float) -> bool:
        return self.distance_to_point(cx, cy) <= radius

    def intersects_polygon(self, other: "Polygon") -> bool:
        """Exact polygon-vs-polygon intersection (used by spatial joins)."""
        if not self._mbr.intersects(other._mbr):
            return False
        for ax, ay, bx, by in self._edges():
            for cx_, cy_, dx_, dy_ in other._edges():
                if segments_intersect(ax, ay, bx, by, cx_, cy_, dx_, dy_):
                    return True
        # No boundary crossing: one may contain the other.
        return self.contains_point(other._xs[0], other._ys[0]) or other.contains_point(
            self._xs[0], self._ys[0]
        )
