"""WKT (Well-Known Text) interop for the geometry types.

Real spatial datasets arrive as WKT (the TIGER extracts the paper uses
are distributed that way), so the library reads and writes it:
``POINT``, ``LINESTRING`` and ``POLYGON`` (single outer ring), the three
geometry kinds the paper's datasets contain.  The parser is strict about
structure but forgiving about whitespace.
"""

from __future__ import annotations

import re

from repro.errors import InvalidGeometryError
from repro.geometry.linestring import LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.predicates import Geometry

__all__ = ["geometry_to_wkt", "geometry_from_wkt"]

_NUMBER = r"[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?"
_POINT_RE = re.compile(
    rf"^\s*POINT\s*\(\s*({_NUMBER})\s+({_NUMBER})\s*\)\s*$", re.IGNORECASE
)
_LINESTRING_RE = re.compile(
    r"^\s*LINESTRING\s*\(\s*(.*?)\s*\)\s*$", re.IGNORECASE | re.DOTALL
)
_POLYGON_RE = re.compile(
    r"^\s*POLYGON\s*\(\s*\(\s*(.*?)\s*\)\s*\)\s*$", re.IGNORECASE | re.DOTALL
)


def _parse_coords(body: str) -> list[tuple[float, float]]:
    coords: list[tuple[float, float]] = []
    for token in body.split(","):
        parts = token.split()
        if len(parts) != 2:
            raise InvalidGeometryError(
                f"malformed WKT coordinate {token.strip()!r} (expected 'x y')"
            )
        coords.append((float(parts[0]), float(parts[1])))
    return coords


def geometry_from_wkt(text: str) -> Geometry:
    """Parse ``POINT`` / ``LINESTRING`` / ``POLYGON`` WKT."""
    match = _POINT_RE.match(text)
    if match:
        return Point(float(match.group(1)), float(match.group(2)))
    match = _LINESTRING_RE.match(text)
    if match:
        return LineString(_parse_coords(match.group(1)))
    match = _POLYGON_RE.match(text)
    if match:
        if ")" in match.group(1):
            raise InvalidGeometryError(
                "polygons with interior rings (holes) are not supported"
            )
        return Polygon(_parse_coords(match.group(1)))
    raise InvalidGeometryError(
        f"unsupported or malformed WKT: {text[:60]!r}"
    )


def _format_coords(coords) -> str:
    return ", ".join(f"{x:.17g} {y:.17g}" for x, y in coords)


def geometry_to_wkt(geom: Geometry) -> str:
    """Serialise a geometry to WKT (Rect becomes its POLYGON ring)."""
    if isinstance(geom, Point):
        return f"POINT ({geom.x:.17g} {geom.y:.17g})"
    if isinstance(geom, LineString):
        return f"LINESTRING ({_format_coords(geom.vertices)})"
    if isinstance(geom, Polygon):
        ring = geom.vertices + geom.vertices[:1]  # close the ring
        return f"POLYGON (({_format_coords(ring)}))"
    # Rect and Segment round-trip via their natural WKT analogues.
    from repro.geometry.mbr import Rect
    from repro.geometry.segment import Segment

    if isinstance(geom, Rect):
        ring = [
            (geom.xl, geom.yl),
            (geom.xu, geom.yl),
            (geom.xu, geom.yu),
            (geom.xl, geom.yu),
            (geom.xl, geom.yl),
        ]
        return f"POLYGON (({_format_coords(ring)}))"
    if isinstance(geom, Segment):
        return (
            f"LINESTRING ({_format_coords([(geom.ax, geom.ay), (geom.bx, geom.by)])})"
        )
    raise InvalidGeometryError(f"cannot serialise {type(geom).__name__} to WKT")
