"""Geometry substrate: MBRs, exact geometries and query predicates.

Spatial indices in this library operate on MBRs (:class:`Rect`) during the
*filtering* step and on exact geometries (:class:`Point`,
:class:`Segment`, :class:`LineString`, :class:`Polygon`) during the
*refinement* step, following the classic two-step framework the paper
builds on (Section II-A).
"""

from repro.geometry.linestring import LineString
from repro.geometry.mbr import (
    Rect,
    max_dist_point_rect,
    min_dist_point_rect,
    reference_point,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.predicates import (
    Geometry,
    geometry_distance_to_point,
    geometry_intersects_disk,
    geometry_intersects_geometry,
    geometry_intersects_window,
    geometry_mbr,
    mbr_side_inside_disk,
    mbr_side_inside_window,
)
from repro.geometry.wkt import geometry_from_wkt, geometry_to_wkt
from repro.geometry.segment import (
    Segment,
    point_segment_distance,
    segment_intersects_rect,
    segments_intersect,
)

__all__ = [
    "Rect",
    "Point",
    "Segment",
    "LineString",
    "Polygon",
    "Geometry",
    "reference_point",
    "min_dist_point_rect",
    "max_dist_point_rect",
    "segments_intersect",
    "segment_intersects_rect",
    "point_segment_distance",
    "geometry_mbr",
    "geometry_intersects_window",
    "geometry_intersects_disk",
    "geometry_intersects_geometry",
    "geometry_distance_to_point",
    "geometry_from_wkt",
    "geometry_to_wkt",
    "mbr_side_inside_window",
    "mbr_side_inside_disk",
]
