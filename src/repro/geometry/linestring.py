"""Linestring geometry (polyline of two or more vertices).

ROADS-style objects in the paper are linestrings; the refinement step of a
range query must test the *exact* polyline against the query window or disk
(Section V), not just the MBR.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import InvalidGeometryError
from repro.geometry.mbr import Rect
from repro.geometry.segment import point_segment_distance, segment_intersects_rect

__all__ = ["LineString"]


class LineString:
    """An immutable open polyline defined by >= 2 vertices."""

    __slots__ = ("_xs", "_ys", "_mbr")

    def __init__(self, vertices: Sequence[tuple[float, float]]):
        if len(vertices) < 2:
            raise InvalidGeometryError(
                f"a linestring needs at least 2 vertices, got {len(vertices)}"
            )
        xs: list[float] = []
        ys: list[float] = []
        for x, y in vertices:
            if not (math.isfinite(x) and math.isfinite(y)):
                raise InvalidGeometryError(f"non-finite vertex: ({x}, {y})")
            xs.append(float(x))
            ys.append(float(y))
        self._xs = tuple(xs)
        self._ys = tuple(ys)
        self._mbr = Rect(min(xs), min(ys), max(xs), max(ys))

    # -- accessors --------------------------------------------------------

    @property
    def vertices(self) -> list[tuple[float, float]]:
        return list(zip(self._xs, self._ys))

    def __len__(self) -> int:
        return len(self._xs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LineString):
            return NotImplemented
        return self._xs == other._xs and self._ys == other._ys

    def __hash__(self) -> int:
        return hash((self._xs, self._ys))

    def __repr__(self) -> str:
        return f"LineString({len(self)} vertices, mbr={self._mbr.as_tuple()})"

    def mbr(self) -> Rect:
        return self._mbr

    @property
    def length(self) -> float:
        total = 0.0
        for i in range(len(self._xs) - 1):
            total += math.hypot(
                self._xs[i + 1] - self._xs[i], self._ys[i + 1] - self._ys[i]
            )
        return total

    # -- predicates ---------------------------------------------------------

    def intersects_rect(self, rect: Rect) -> bool:
        """Exact test: does any segment of the polyline touch ``rect``?"""
        if not self._mbr.intersects(rect):
            return False
        xs, ys = self._xs, self._ys
        for i in range(len(xs) - 1):
            if segment_intersects_rect(xs[i], ys[i], xs[i + 1], ys[i + 1], rect):
                return True
        return False

    def distance_to_point(self, px: float, py: float) -> float:
        """Minimum distance from the polyline to a point."""
        xs, ys = self._xs, self._ys
        best = math.inf
        for i in range(len(xs) - 1):
            d = point_segment_distance(px, py, xs[i], ys[i], xs[i + 1], ys[i + 1])
            if d < best:
                best = d
                # distances are nonnegative, so <= 0.0 is exactly the
                # touching case — without an exact float == on the
                # accumulated minimum
                if best <= 0.0:
                    break
        return best

    def intersects_disk(self, cx: float, cy: float, radius: float) -> bool:
        return self.distance_to_point(cx, cy) <= radius
