"""Axis-aligned minimum bounding rectangles (MBRs).

The paper (Section III) represents every object by its MBR during the
filtering step.  An MBR ``r`` is the pair of projections
``r.x = [r.xl, r.xu]`` and ``r.y = [r.yl, r.yu]``.  This module provides

* :class:`Rect` — an immutable rectangle with the intersection/containment
  predicates used throughout the paper,
* the *reference point* of Dittrich & Seeger [9], used by the 1-layer
  baseline for duplicate elimination, and
* helpers for the min/max distance between a point and a rectangle, used by
  disk (distance) range queries (Section IV-E).

Coordinate convention follows the paper: ``x`` grows left to right and
``y`` grows top to bottom (footnote 2); nothing in the code depends on the
visual orientation, only on ``l <= u`` per dimension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.errors import InvalidRectError

__all__ = ["Rect", "reference_point", "min_dist_point_rect", "max_dist_point_rect"]


@dataclass(frozen=True, slots=True)
class Rect:
    """An immutable axis-aligned rectangle ``[xl, xu] x [yl, yu]``.

    Degenerate rectangles (zero width and/or height) are allowed: they model
    point or axis-parallel-segment MBRs, which the paper explicitly covers
    with its ``10**-inf`` synthetic datasets (Fig. 9).
    """

    xl: float
    yl: float
    xu: float
    yu: float

    def __post_init__(self) -> None:
        if not (
            math.isfinite(self.xl)
            and math.isfinite(self.yl)
            and math.isfinite(self.xu)
            and math.isfinite(self.yu)
        ):
            raise InvalidRectError(f"non-finite rectangle coordinates: {self}")
        if self.xl > self.xu or self.yl > self.yu:
            raise InvalidRectError(
                f"inverted rectangle: xl={self.xl} xu={self.xu} yl={self.yl} yu={self.yu}"
            )

    # -- basic measures -------------------------------------------------

    @property
    def width(self) -> float:
        return self.xu - self.xl

    @property
    def height(self) -> float:
        return self.yu - self.yl

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def margin(self) -> float:
        """Half-perimeter, the R*-tree 'margin' measure."""
        return self.width + self.height

    def center(self) -> tuple[float, float]:
        return ((self.xl + self.xu) / 2.0, (self.yl + self.yu) / 2.0)

    def corners(self) -> Iterator[tuple[float, float]]:
        """Yield the four corners (degenerate rects repeat coordinates)."""
        yield (self.xl, self.yl)
        yield (self.xu, self.yl)
        yield (self.xu, self.yu)
        yield (self.xl, self.yu)

    # -- predicates ------------------------------------------------------

    def intersects(self, other: "Rect") -> bool:
        """Closed-interval intersection test (4 comparisons, Section IV-B)."""
        return not (
            self.xu < other.xl
            or self.xl > other.xu
            or self.yu < other.yl
            or self.yl > other.yu
        )

    def contains(self, other: "Rect") -> bool:
        """True iff ``other`` lies entirely inside ``self`` (closed)."""
        return (
            self.xl <= other.xl
            and other.xu <= self.xu
            and self.yl <= other.yl
            and other.yu <= self.yu
        )

    def contains_point(self, x: float, y: float) -> bool:
        return self.xl <= x <= self.xu and self.yl <= y <= self.yu

    def covers_in_dim(self, other: "Rect", dim: str) -> bool:
        """True iff ``self`` covers ``other``'s projection in dimension ``dim``.

        Used by the secondary-filtering test of Lemma 5: if a window covers a
        candidate MBR in either dimension, one side of the MBR lies inside
        the window and refinement can be skipped.
        """
        if dim == "x":
            return self.xl <= other.xl and other.xu <= self.xu
        if dim == "y":
            return self.yl <= other.yl and other.yu <= self.yu
        raise ValueError(f"dim must be 'x' or 'y', got {dim!r}")

    # -- constructive ops -------------------------------------------------

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap rectangle, or ``None`` when disjoint."""
        xl = max(self.xl, other.xl)
        yl = max(self.yl, other.yl)
        xu = min(self.xu, other.xu)
        yu = min(self.yu, other.yu)
        if xl > xu or yl > yu:
            return None
        return Rect(xl, yl, xu, yu)

    def union(self, other: "Rect") -> "Rect":
        """The MBR of the two rectangles (R-tree node enlargement)."""
        return Rect(
            min(self.xl, other.xl),
            min(self.yl, other.yl),
            max(self.xu, other.xu),
            max(self.yu, other.yu),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase if ``other`` is merged into ``self`` (R-tree)."""
        return self.union(other).area - self.area

    def overlap_area(self, other: "Rect") -> float:
        inter = self.intersection(other)
        return 0.0 if inter is None else inter.area

    # -- conversions -------------------------------------------------------

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.xl, self.yl, self.xu, self.yu)

    @classmethod
    def from_points(cls, points: "list[tuple[float, float]]") -> "Rect":
        """MBR of a non-empty point sequence."""
        if not points:
            raise InvalidRectError("cannot build an MBR from zero points")
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        return cls(min(xs), min(ys), max(xs), max(ys))


def reference_point(result: Rect, window: Rect) -> tuple[float, float]:
    """Reference point of Dittrich & Seeger [9] for duplicate elimination.

    The reference point of a query result is the lower-left corner
    (minimum x, minimum y) of the intersection between the result MBR and
    the query window.  It lies in exactly one tile of any space-oriented
    partitioning, so reporting a result only from the tile containing its
    reference point eliminates duplicates without hashing.

    Raises :class:`InvalidRectError` if the arguments do not intersect
    (there is no intersection area to take a corner of).
    """
    inter = result.intersection(window)
    if inter is None:
        raise InvalidRectError("reference point of non-intersecting rectangles")
    return (inter.xl, inter.yl)


def min_dist_point_rect(x: float, y: float, rect: Rect) -> float:
    """Minimum Euclidean distance from point ``(x, y)`` to ``rect``.

    Zero when the point lies inside the rectangle.  Used to decide whether a
    tile / MBR intersects a disk query range.
    """
    dx = max(rect.xl - x, 0.0, x - rect.xu)
    dy = max(rect.yl - y, 0.0, y - rect.yu)
    return math.hypot(dx, dy)


def max_dist_point_rect(x: float, y: float, rect: Rect) -> float:
    """Maximum Euclidean distance from point ``(x, y)`` to ``rect``.

    Used to detect tiles *totally covered* by a disk range (Section IV-E):
    if the farthest corner is within the radius the whole tile is inside the
    disk and no per-object distance verification is needed.
    """
    dx = max(abs(x - rect.xl), abs(x - rect.xu))
    dy = max(abs(y - rect.yl), abs(y - rect.yu))
    return math.hypot(dx, dy)
