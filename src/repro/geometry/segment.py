"""Line-segment primitives and the low-level predicates built on them.

These are the computational-geometry workhorses behind the refinement step
(Section V): exact linestring/polygon vs window and vs disk tests all reduce
to segment-segment intersection, point-segment distance and clipping a
segment against a rectangle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import InvalidGeometryError
from repro.geometry.mbr import Rect

__all__ = [
    "Segment",
    "orientation",
    "on_segment",
    "segments_intersect",
    "point_segment_distance",
    "segment_intersects_rect",
]

_EPS = 1e-12


def orientation(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> int:
    """Orientation of the ordered triple (a, b, c).

    Returns ``1`` for counter-clockwise, ``-1`` for clockwise and ``0`` for
    collinear (within a small epsilon to absorb floating-point noise).
    """
    cross = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    if cross > _EPS:
        return 1
    if cross < -_EPS:
        return -1
    return 0


def on_segment(px: float, py: float, ax: float, ay: float, bx: float, by: float) -> bool:
    """True iff point p lies on segment a-b, assuming p is collinear with it."""
    return (
        min(ax, bx) - _EPS <= px <= max(ax, bx) + _EPS
        and min(ay, by) - _EPS <= py <= max(ay, by) + _EPS
    )


def segments_intersect(
    ax: float, ay: float, bx: float, by: float,
    cx: float, cy: float, dx: float, dy: float,
) -> bool:
    """Closed intersection test between segments a-b and c-d.

    Handles all degenerate cases: shared endpoints, collinear overlap and
    zero-length segments.
    """
    o1 = orientation(ax, ay, bx, by, cx, cy)
    o2 = orientation(ax, ay, bx, by, dx, dy)
    o3 = orientation(cx, cy, dx, dy, ax, ay)
    o4 = orientation(cx, cy, dx, dy, bx, by)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(cx, cy, ax, ay, bx, by):
        return True
    if o2 == 0 and on_segment(dx, dy, ax, ay, bx, by):
        return True
    if o3 == 0 and on_segment(ax, ay, cx, cy, dx, dy):
        return True
    if o4 == 0 and on_segment(bx, by, cx, cy, dx, dy):
        return True
    return False


def point_segment_distance(
    px: float, py: float, ax: float, ay: float, bx: float, by: float
) -> float:
    """Minimum Euclidean distance from point p to segment a-b."""
    abx = bx - ax
    aby = by - ay
    denom = abx * abx + aby * aby
    if denom <= _EPS:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * abx + (py - ay) * aby) / denom
    t = max(0.0, min(1.0, t))
    return math.hypot(px - (ax + t * abx), py - (ay + t * aby))


def segment_intersects_rect(
    ax: float, ay: float, bx: float, by: float, rect: Rect
) -> bool:
    """Closed intersection test between segment a-b and a rectangle.

    Uses the Cohen-Sutherland style trivial accept/reject followed by the
    Liang-Barsky parametric clip.
    """
    # Trivial accept: either endpoint inside.
    if rect.contains_point(ax, ay) or rect.contains_point(bx, by):
        return True
    # Trivial reject: segment MBR disjoint from rect.
    if (
        max(ax, bx) < rect.xl
        or min(ax, bx) > rect.xu
        or max(ay, by) < rect.yl
        or min(ay, by) > rect.yu
    ):
        return False
    # Liang-Barsky clip of the parametric segment against the four slabs.
    dx = bx - ax
    dy = by - ay
    t0, t1 = 0.0, 1.0
    for p, q in (
        (-dx, ax - rect.xl),
        (dx, rect.xu - ax),
        (-dy, ay - rect.yl),
        (dy, rect.yu - ay),
    ):
        if abs(p) <= _EPS:
            if q < 0:
                return False
            continue
        t = q / p
        if p < 0:
            if t > t1:
                return False
            t0 = max(t0, t)
        else:
            if t < t0:
                return False
            t1 = min(t1, t)
    return t0 <= t1


@dataclass(frozen=True, slots=True)
class Segment:
    """A 2D line segment with convenience predicate methods."""

    ax: float
    ay: float
    bx: float
    by: float

    def __post_init__(self) -> None:
        for v in (self.ax, self.ay, self.bx, self.by):
            if not math.isfinite(v):
                raise InvalidGeometryError(f"non-finite segment coordinate: {v}")

    @property
    def length(self) -> float:
        return math.hypot(self.bx - self.ax, self.by - self.ay)

    def mbr(self) -> Rect:
        return Rect(
            min(self.ax, self.bx),
            min(self.ay, self.by),
            max(self.ax, self.bx),
            max(self.ay, self.by),
        )

    def intersects(self, other: "Segment") -> bool:
        return segments_intersect(
            self.ax, self.ay, self.bx, self.by,
            other.ax, other.ay, other.bx, other.by,
        )

    def intersects_rect(self, rect: Rect) -> bool:
        return segment_intersects_rect(self.ax, self.ay, self.bx, self.by, rect)

    def distance_to_point(self, px: float, py: float) -> float:
        return point_segment_distance(px, py, self.ax, self.ay, self.bx, self.by)
