"""Query predicates over exact geometries and the Lemma 5 post-filter.

The refinement step of a range query (Section V) tests the *exact* geometry
of each candidate against the query range.  This module provides

* generic dispatch of ``geometry intersects window`` and
  ``geometry intersects disk`` over every geometry type in
  :mod:`repro.geometry`, and
* the two *secondary filtering* tests of Lemma 5, which certify a candidate
  as a true result from its MBR alone so the exact-geometry test can be
  skipped for the vast majority of candidates.
"""

from __future__ import annotations

import math
from typing import Union

from repro.geometry.linestring import LineString
from repro.geometry.mbr import Rect
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.segment import Segment

__all__ = [
    "Geometry",
    "geometry_mbr",
    "geometry_intersects_window",
    "geometry_intersects_disk",
    "geometry_intersects_geometry",
    "geometry_distance_to_point",
    "mbr_side_inside_window",
    "mbr_side_inside_disk",
]

Geometry = Union[Point, Segment, LineString, Polygon, Rect]


def geometry_mbr(geom: Geometry) -> Rect:
    """MBR of any supported geometry (a Rect is its own MBR)."""
    if isinstance(geom, Rect):
        return geom
    return geom.mbr()


def geometry_intersects_window(geom: Geometry, window: Rect) -> bool:
    """Exact test: does the geometry intersect the rectangular window?"""
    if isinstance(geom, Rect):
        return geom.intersects(window)
    if isinstance(geom, Point):
        return geom.intersects_rect(window)
    if isinstance(geom, (Segment, LineString, Polygon)):
        return geom.intersects_rect(window)
    raise TypeError(f"unsupported geometry type: {type(geom).__name__}")


def _rect_intersects_disk(rect: Rect, cx: float, cy: float, radius: float) -> bool:
    dx = max(rect.xl - cx, 0.0, cx - rect.xu)
    dy = max(rect.yl - cy, 0.0, cy - rect.yu)
    return dx * dx + dy * dy <= radius * radius


def geometry_intersects_disk(
    geom: Geometry, cx: float, cy: float, radius: float
) -> bool:
    """Exact test: is the geometry's min distance to (cx, cy) <= radius?"""
    if isinstance(geom, Rect):
        return _rect_intersects_disk(geom, cx, cy, radius)
    if isinstance(geom, Point):
        return geom.intersects_disk(cx, cy, radius)
    if isinstance(geom, Segment):
        return geom.distance_to_point(cx, cy) <= radius
    if isinstance(geom, (LineString, Polygon)):
        return geom.intersects_disk(cx, cy, radius)
    raise TypeError(f"unsupported geometry type: {type(geom).__name__}")


def _segments_of(geom: Geometry):
    """Yield the segments of a 1D/2D boundary geometry."""
    if isinstance(geom, Segment):
        yield (geom.ax, geom.ay, geom.bx, geom.by)
        return
    if isinstance(geom, LineString):
        verts = geom.vertices
        for i in range(len(verts) - 1):
            yield (*verts[i], *verts[i + 1])
        return
    if isinstance(geom, Polygon):
        verts = geom.vertices
        n = len(verts)
        for i in range(n):
            yield (*verts[i], *verts[(i + 1) % n])
        return
    raise TypeError(f"no segments for {type(geom).__name__}")


def _point_on_geometry(geom: Geometry, x: float, y: float) -> bool:
    """Is the point on/inside the geometry (closed semantics)?"""
    from repro.geometry.segment import point_segment_distance

    if isinstance(geom, Rect):
        return geom.contains_point(x, y)
    if isinstance(geom, Point):
        return geom.x == x and geom.y == y
    if isinstance(geom, Polygon):
        return geom.contains_point(x, y)
    return any(
        point_segment_distance(x, y, ax, ay, bx, by) <= 1e-12
        for ax, ay, bx, by in _segments_of(geom)
    )


def geometry_intersects_geometry(a: Geometry, b: Geometry) -> bool:
    """Exact intersection test between any two supported geometries.

    The refinement step of a *spatial join* (each candidate pair's exact
    geometries must be verified, mirroring Section V for range queries).
    Closed semantics: touching boundaries intersect.
    """
    from repro.geometry.segment import segments_intersect

    # Cheap MBR reject first.
    if not geometry_mbr(a).intersects(geometry_mbr(b)):
        return False
    # Rects delegate to the window predicates (already exact).
    if isinstance(a, Rect):
        return geometry_intersects_window(b, a)
    if isinstance(b, Rect):
        return geometry_intersects_window(a, b)
    # Points reduce to on-geometry tests.
    if isinstance(a, Point):
        return _point_on_geometry(b, a.x, a.y)
    if isinstance(b, Point):
        return _point_on_geometry(a, b.x, b.y)
    # Boundary-vs-boundary: any segment pair crossing.
    for sa in _segments_of(a):
        for sb in _segments_of(b):
            if segments_intersect(*sa, *sb):
                return True
    # No boundary crossing: one may contain the other (polygons only).
    if isinstance(a, Polygon):
        x, y = next(_segments_of(b))[:2]
        if a.contains_point(x, y):
            return True
    if isinstance(b, Polygon):
        x, y = next(_segments_of(a))[:2]
        if b.contains_point(x, y):
            return True
    return False


def geometry_distance_to_point(geom: Geometry, cx: float, cy: float) -> float:
    """Exact minimum distance from the geometry to a point.

    Zero when the point lies on/inside the geometry.  Used by the exact
    (refined) k-nearest-neighbour search.
    """
    if isinstance(geom, Rect):
        dx = max(geom.xl - cx, 0.0, cx - geom.xu)
        dy = max(geom.yl - cy, 0.0, cy - geom.yu)
        return math.hypot(dx, dy)
    if isinstance(geom, Point):
        return math.hypot(geom.x - cx, geom.y - cy)
    if isinstance(geom, Segment):
        return geom.distance_to_point(cx, cy)
    if isinstance(geom, (LineString, Polygon)):
        return geom.distance_to_point(cx, cy)
    raise TypeError(f"unsupported geometry type: {type(geom).__name__}")


def mbr_side_inside_window(r: Rect, window: Rect) -> bool:
    """Lemma 5 test for window queries (at most four comparisons).

    If at least one projection of ``r`` is covered by the corresponding
    projection of the window, then at least one full side of the MBR is
    inside the window.  Every side of an MBR touches the object, so the
    object is guaranteed to intersect the window and the refinement step can
    be skipped.  The caller must already know that ``r`` intersects
    ``window``.
    """
    return (window.xl <= r.xl and r.xu <= window.xu) or (
        window.yl <= r.yl and r.yu <= window.yu
    )


def mbr_side_inside_disk(r: Rect, cx: float, cy: float, radius: float) -> bool:
    """Lemma 5 test for disk queries (at most four distance computations).

    If at least two corners of the MBR lie within the disk then at least one
    side of the MBR is inside the disk (disks are convex), hence the object
    intersects the disk.  The caller must already know that the MBR
    intersects the disk.
    """
    r2 = radius * radius
    inside = 0
    for px, py in r.corners():
        dx = px - cx
        dy = py - cy
        if dx * dx + dy * dy <= r2:
            inside += 1
            if inside >= 2:
                return True
    return False
