"""Query EXPLAIN: a structured account of how a query was answered.

``explain_window`` / ``explain_disk`` / ``explain_knn`` / ``explain_join``
run one query under a private tracer with an :class:`ExplainStats`
collector and return a :class:`QueryPlan` — the per-phase, per-class
breakdown the paper's analysis talks about in prose:

* secondary-partition scans split by class (A/B/C/D for the two-layer
  families, ``tile``/``leaf``/``node``/``L<level>`` for the others); the
  per-class counts **sum to the total tiles visited** by construction,
  because both come from the same :meth:`QueryStats.visit_class` hook;
* candidates flowing through each phase (``filter.lookup`` →
  ``filter.scan`` → ``dedup`` → ``refine.*``) with wall-clock per phase;
* duplicate accounting: how many duplicate results a replicating index
  *would* have produced for this query (computed from the storage via
  ``explain_partitions``) — "avoided" for families that are
  duplicate-free by construction (Lemmas 1-2), "eliminated" for families
  that deduplicate explicitly (reference points / hashing);
* comparisons saved versus the 4-comparisons-per-rectangle baseline
  (the §IV-B claim, Corollary 1);
* replication factor over the partitions the query actually touched.

Every index family exposes ``explain_partitions(window)`` (the touched
partitions with their stored ids) and a ``dedup_strategy`` attribute
(``"avoid"``, ``"refpoint"``, ``"hash"``, ``"active_border"`` or
``"none"``); asking EXPLAIN of an object without them raises
:class:`~repro.errors.ObsError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable

import numpy as np

from repro.errors import ObsError
from repro.geometry.mbr import Rect
from repro.obs.tracing import SpanNode, Tracer, activate
from repro.stats import QueryStats

__all__ = [
    "ExplainStats",
    "PhaseStep",
    "QueryPlan",
    "explain_window",
    "explain_disk",
    "explain_knn",
    "explain_join",
]


class ExplainStats(QueryStats):
    """Query stats that also record the per-class scan breakdown.

    A deliberate *plain* subclass (not a dataclass): ``class_scans`` is
    an instance attribute, not a dataclass field, so ``merge``/``diff``/
    ``__add__`` — which iterate ``fields()`` — keep working on the
    counter set they know about.
    """

    def __init__(self, **kwargs: int):
        super().__init__(**kwargs)
        self.class_scans: dict[str, int] = {}

    def visit_class(self, label: str) -> None:
        self.class_scans[label] = self.class_scans.get(label, 0) + 1


@dataclass
class PhaseStep:
    """One phase of the query pipeline, as recorded by the tracer."""

    path: str
    name: str
    depth: int
    calls: int
    total_ms: float
    self_ms: float
    candidates_in: "int | None" = None
    candidates_out: "int | None" = None
    note: str = ""

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "calls": self.calls,
            "total_ms": self.total_ms,
            "self_ms": self.self_ms,
            "candidates_in": self.candidates_in,
            "candidates_out": self.candidates_out,
            "note": self.note,
        }


@dataclass
class QueryPlan:
    """Structured EXPLAIN output for one query."""

    kind: str
    query: dict
    index: dict
    result_count: int
    wall_ms: float
    #: total secondary-partition scans == sum(tiles_by_class.values()).
    tiles_visited: int
    #: scans per class label ("A".."D", "tile", "leaf", "L0", "A·B", ...).
    tiles_by_class: dict[str, int]
    #: primary partitions (tiles/nodes/cells) visited, from QueryStats.
    primary_partitions: int
    #: non-empty partitions the query's window overlaps in storage.
    touched_partitions: int
    #: entries stored in the touched partitions.
    touched_entries: int
    #: distinct objects stored in the touched partitions.
    touched_objects: int
    #: touched_entries / touched_objects (1.0 when nothing is touched).
    replication_factor: float
    #: duplicate results a replicating scan of the touched partitions
    #: would produce, that this index never generated (Lemmas 1-2).
    duplicates_avoided: int
    #: duplicate results generated and then removed by explicit dedup.
    duplicates_eliminated: int
    dedup_strategy: str
    comparisons: int
    #: comparisons below the 4-per-scanned-rectangle baseline (§IV-B).
    comparisons_saved: int
    phases: list[PhaseStep]
    stats: dict
    result: np.ndarray = field(repr=False, default=None)

    # -- invariants -------------------------------------------------------

    def check(self) -> None:
        """Raise :class:`ObsError` if the plan is internally inconsistent."""
        total = sum(self.tiles_by_class.values())
        if total != self.tiles_visited:
            raise ObsError(
                f"per-class scans sum to {total} but tiles_visited is "
                f"{self.tiles_visited}"
            )

    # -- export -----------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready view; the raw result array becomes a preview."""
        preview: "list[int] | list[list[int]]"
        if self.result is None:
            preview = []
        else:
            arr = np.asarray(self.result)
            preview = arr[:50].tolist()
        return {
            "kind": self.kind,
            "query": self.query,
            "index": self.index,
            "result_count": self.result_count,
            "result_preview": preview,
            "wall_ms": self.wall_ms,
            "tiles_visited": self.tiles_visited,
            "tiles_by_class": dict(self.tiles_by_class),
            "primary_partitions": self.primary_partitions,
            "touched_partitions": self.touched_partitions,
            "touched_entries": self.touched_entries,
            "touched_objects": self.touched_objects,
            "replication_factor": self.replication_factor,
            "duplicates_avoided": self.duplicates_avoided,
            "duplicates_eliminated": self.duplicates_eliminated,
            "dedup_strategy": self.dedup_strategy,
            "comparisons": self.comparisons,
            "comparisons_saved": self.comparisons_saved,
            "phases": [p.as_dict() for p in self.phases],
            "stats": self.stats,
        }

    def to_json(self, indent: "int | None" = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def format_tree(self) -> str:
        """Human-readable console rendering of the plan."""
        idx = self.index
        grid = f" {idx['grid']}" if idx.get("grid") else ""
        lines = [
            f"EXPLAIN {self.kind}"
            f"  ({idx['family']}{grid}, {idx.get('objects', '?')} objects)",
            f"  query    {_fmt_query(self.query)}",
            f"  result   {self.result_count} "
            f"{'pairs' if self.kind == 'join' else 'ids'}"
            f" in {self.wall_ms:.3f} ms",
        ]
        by_class = "  ".join(
            f"{k}={v}" for k, v in sorted(self.tiles_by_class.items())
        )
        lines.append("  partitions")
        lines.append(
            f"    secondary scans (tiles visited) . {self.tiles_visited}"
            + (f"   [{by_class}]" if by_class else "")
        )
        lines.append(
            f"    primary partitions visited ...... {self.primary_partitions}"
        )
        lines.append(
            f"    touched in storage .............. {self.touched_partitions}"
            f" partitions / {self.touched_entries} entries /"
            f" {self.touched_objects} objects"
            f" (replication {self.replication_factor:.2f})"
        )
        lines.append("  duplicates")
        lines.append(
            f"    avoided ......................... {self.duplicates_avoided}"
            f"   (strategy: {self.dedup_strategy})"
        )
        lines.append(
            f"    eliminated ...................... "
            f"{self.duplicates_eliminated}"
        )
        lines.append("  comparisons")
        lines.append(
            f"    performed ....................... {self.comparisons}"
        )
        lines.append(
            f"    saved vs 4-per-rect baseline .... {self.comparisons_saved}"
        )
        lines.append("  phases")
        for p in self.phases:
            flow = ""
            if p.candidates_in is not None or p.candidates_out is not None:
                left = "·" if p.candidates_in is None else p.candidates_in
                right = "·" if p.candidates_out is None else p.candidates_out
                flow = f"  [{left} -> {right}]"
            note = f"  {p.note}" if p.note else ""
            label = "  " * p.depth + p.name
            lines.append(
                f"    {label:<28} calls={p.calls:<5} "
                f"{p.total_ms:>9.3f} ms{flow}{note}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format_tree()


def _fmt_query(query: dict) -> str:
    parts = []
    for k, v in query.items():
        if isinstance(v, float):
            parts.append(f"{k}={v:g}")
        else:
            parts.append(f"{k}={v}")
    return " ".join(parts)


# -- accounting helpers -----------------------------------------------------


def _partitions_of(index, window: Rect) -> list[tuple[Rect, np.ndarray]]:
    fn = getattr(index, "explain_partitions", None)
    if fn is None:
        raise ObsError(
            f"{type(index).__name__} does not expose explain_partitions(); "
            "EXPLAIN needs storage introspection"
        )
    return fn(window)


def _replica_hits(
    partitions: list[tuple[Rect, np.ndarray]], result_ids: np.ndarray
) -> int:
    """Total occurrences of the result ids across the touched partitions."""
    if not partitions or result_ids.shape[0] == 0:
        return int(result_ids.shape[0])
    stored = np.sort(np.concatenate([ids for _, ids in partitions]))
    lo = np.searchsorted(stored, result_ids, side="left")
    hi = np.searchsorted(stored, result_ids, side="right")
    return int((hi - lo).sum())


def _touched_summary(
    partitions: list[tuple[Rect, np.ndarray]]
) -> tuple[int, int, int, float]:
    """(partitions, entries, distinct objects, replication factor)."""
    if not partitions:
        return 0, 0, 0, 1.0
    all_ids = np.concatenate([ids for _, ids in partitions])
    entries = int(all_ids.shape[0])
    objects = int(np.unique(all_ids).shape[0])
    factor = entries / objects if objects else 1.0
    return len(partitions), entries, objects, factor


def _describe_index(index) -> dict:
    desc: dict = {
        "family": type(index).__name__,
        "dedup_strategy": getattr(index, "dedup_strategy", "none"),
    }
    grid = getattr(index, "grid", None)
    if grid is not None:
        desc["grid"] = f"{grid.nx}x{grid.ny}"
    try:
        desc["objects"] = len(index)
    except TypeError:
        pass
    replicas = getattr(index, "replica_count", None)
    if replicas is not None:
        desc["entries"] = int(replicas)
    return desc


def _dedup_note(strategy: str, eliminated: int) -> str:
    if strategy == "avoid":
        return "duplicate-free by construction (class partitioning)"
    if strategy == "refpoint":
        return f"{eliminated} duplicates eliminated (reference-point test)"
    if strategy == "hash":
        return f"{eliminated} duplicates eliminated (hash set)"
    if strategy == "active_border":
        return f"{eliminated} duplicates eliminated (active border)"
    return "unique placement; nothing to eliminate"


def _build_phases(
    tracer: Tracer,
    stats: QueryStats,
    result_count: int,
    eliminated: int,
    strategy: str,
) -> list[PhaseStep]:
    candidates = result_count + eliminated
    annotations: dict[str, tuple["int | None", "int | None", str]] = {
        "filter.lookup": (None, stats.partitions_visited, ""),
        "filter.scan": (
            stats.rects_scanned,
            candidates,
            f"{stats.comparisons} comparisons",
        ),
        "dedup": (candidates, result_count, _dedup_note(strategy, eliminated)),
        "refine.secondary": (
            candidates,
            None,
            f"{stats.refinements_avoided} certified without refinement",
        ),
        "refine.exact": (stats.refinement_tests, result_count, ""),
        "join.partition": (None, None, "replicate R and S onto the grid"),
        "knn.rank": (None, None, "rank candidates by MBR distance"),
    }

    steps: list[PhaseStep] = []

    def walk(node: SpanNode, prefix: str, depth: int) -> None:
        for child in node.children.values():
            path = f"{prefix}{child.name}"
            cin, cout, note = annotations.get(child.name, (None, None, ""))
            steps.append(
                PhaseStep(
                    path=path,
                    name=child.name,
                    depth=depth,
                    calls=child.calls,
                    total_ms=child.total_s * 1e3,
                    self_ms=child.self_s * 1e3,
                    candidates_in=cin,
                    candidates_out=cout,
                    note=note,
                )
            )
            walk(child, path + "/", depth + 1)

    walk(tracer.root, "", 0)
    return steps


def _run_traced(
    runner: Callable[[QueryStats], np.ndarray]
) -> tuple[np.ndarray, ExplainStats, Tracer, float]:
    stats = ExplainStats()
    tracer = Tracer()
    t0 = perf_counter()
    with activate(tracer):
        result = runner(stats)
    wall_ms = (perf_counter() - t0) * 1e3
    return result, stats, tracer, wall_ms


def _assemble(
    kind: str,
    query_desc: dict,
    index_desc: dict,
    strategy: str,
    result: np.ndarray,
    result_count: int,
    stats: ExplainStats,
    tracer: Tracer,
    wall_ms: float,
    partitions: list[tuple[Rect, np.ndarray]],
    would_be_duplicates: int,
) -> QueryPlan:
    n_parts, entries, objects, factor = _touched_summary(partitions)
    if strategy == "avoid":
        avoided = would_be_duplicates
        eliminated = stats.duplicates_generated
    elif strategy == "none":
        avoided = 0
        eliminated = 0
    else:
        avoided = 0
        eliminated = stats.duplicates_generated
    plan = QueryPlan(
        kind=kind,
        query=query_desc,
        index=index_desc,
        result_count=result_count,
        wall_ms=wall_ms,
        tiles_visited=sum(stats.class_scans.values()),
        tiles_by_class=dict(stats.class_scans),
        primary_partitions=stats.partitions_visited,
        touched_partitions=n_parts,
        touched_entries=entries,
        touched_objects=objects,
        replication_factor=factor,
        duplicates_avoided=avoided,
        duplicates_eliminated=eliminated,
        dedup_strategy=strategy,
        comparisons=stats.comparisons,
        comparisons_saved=max(0, 4 * stats.rects_scanned - stats.comparisons),
        phases=_build_phases(tracer, stats, result_count, eliminated, strategy),
        stats=stats.as_dict(),
        result=result,
    )
    plan.check()
    return plan


# -- public entry points ----------------------------------------------------


def explain_window(
    index: Any,
    window: Rect,
    runner: "Callable[[QueryStats], np.ndarray] | None" = None,
    kind: str = "window",
    query_desc: "dict | None" = None,
) -> QueryPlan:
    """EXPLAIN a window query against any index family.

    ``runner`` overrides the executed query (e.g. the exact
    filter-and-refine pipeline); it must accept a stats object and
    return result ids.  Duplicate accounting always compares the result
    against the index's own storage over ``window``.
    """
    if runner is None:
        runner = lambda s: index.window_query(window, s)  # noqa: E731
    partitions = _partitions_of(index, window)
    result, stats, tracer, wall_ms = _run_traced(runner)
    would_be = _replica_hits(partitions, result) - int(result.shape[0])
    return _assemble(
        kind=kind,
        query_desc=query_desc
        or {
            "window": [window.xl, window.yl, window.xu, window.yu],
        },
        index_desc=_describe_index(index),
        strategy=getattr(index, "dedup_strategy", "none"),
        result=result,
        result_count=int(result.shape[0]),
        stats=stats,
        tracer=tracer,
        wall_ms=wall_ms,
        partitions=partitions,
        would_be_duplicates=would_be,
    )


def explain_disk(
    index: Any,
    query: Any,
    runner: "Callable[[QueryStats], np.ndarray] | None" = None,
) -> QueryPlan:
    """EXPLAIN a disk query; storage accounting runs over the disk's MBR."""
    if runner is None:
        runner = lambda s: index.disk_query(query, s)  # noqa: E731
    return explain_window(
        index,
        query.mbr(),
        runner=runner,
        kind="disk",
        query_desc={
            "center": [query.cx, query.cy],
            "radius": query.radius,
        },
    )


def explain_knn(
    index: Any, data: Any, cx: float, cy: float, k: int
) -> QueryPlan:
    """EXPLAIN a kNN query.

    Storage accounting runs over the MBR of the k-th-distance disk — the
    region the final boundary-closing probe of the radius-doubling
    algorithm covers (Section IV-E).
    """
    from repro.core.knn import knn_query

    runner = lambda s: knn_query(index, data, cx, cy, k, s)  # noqa: E731
    result, stats, tracer, wall_ms = _run_traced(runner)
    if result.shape[0]:
        dx = np.maximum(
            np.maximum(data.xl[result] - cx, 0.0), cx - data.xu[result]
        )
        dy = np.maximum(
            np.maximum(data.yl[result] - cy, 0.0), cy - data.yu[result]
        )
        kth = float(np.hypot(dx, dy).max())
    else:
        kth = 0.0
    window = Rect(cx - kth, cy - kth, cx + kth, cy + kth)
    partitions = _partitions_of(index, window)
    would_be = _replica_hits(partitions, result) - int(result.shape[0])
    return _assemble(
        kind="knn",
        query_desc={"center": [cx, cy], "k": k, "kth_distance": kth},
        index_desc=_describe_index(index),
        strategy=getattr(index, "dedup_strategy", "none"),
        result=result,
        result_count=int(result.shape[0]),
        stats=stats,
        tracer=tracer,
        wall_ms=wall_ms,
        partitions=partitions,
        would_be_duplicates=would_be,
    )


def explain_join(
    data_r: Any,
    data_s: Any,
    partitions_per_dim: int = 64,
    domain: "Rect | None" = None,
    algorithm: str = "nested",
    baseline: bool = False,
) -> QueryPlan:
    """EXPLAIN a spatial join of two datasets.

    ``baseline=True`` explains the 1-layer (reference-point dedup) join
    instead of the two-layer class-combination join.  Duplicates avoided
    are computed per result pair as the number of grid tiles the pair's
    MBR intersection spans, minus one — exactly the duplicates a plain
    replicating partitioned join would generate (Lemma 2 applied to
    joins).
    """
    from repro.core.join import one_layer_spatial_join, two_layer_spatial_join
    from repro.grid.base import GridPartitioner, replicate

    grid = GridPartitioner(
        partitions_per_dim,
        partitions_per_dim,
        domain if domain is not None else Rect(0.0, 0.0, 1.0, 1.0),
    )
    if baseline:
        runner = lambda s: one_layer_spatial_join(  # noqa: E731
            data_r, data_s, partitions_per_dim, domain, s
        )
        strategy = "refpoint"
        family = "one_layer_spatial_join"
    else:
        runner = lambda s: two_layer_spatial_join(  # noqa: E731
            data_r, data_s, partitions_per_dim, domain, s, algorithm
        )
        strategy = "avoid"
        family = "two_layer_spatial_join"
    result, stats, tracer, wall_ms = _run_traced(runner)
    n_pairs = int(result.shape[0])

    # Duplicates a replicating join would produce: tiles spanned by each
    # result pair's MBR intersection, minus one per pair.
    if n_pairs:
        pr = result[:, 0]
        ps = result[:, 1]
        ix0 = grid.tile_ix_array(np.maximum(data_r.xl[pr], data_s.xl[ps]))
        ix1 = grid.tile_ix_array(np.minimum(data_r.xu[pr], data_s.xu[ps]))
        iy0 = grid.tile_iy_array(np.maximum(data_r.yl[pr], data_s.yl[ps]))
        iy1 = grid.tile_iy_array(np.minimum(data_r.yu[pr], data_s.yu[ps]))
        spans = (ix1 - ix0 + 1) * (iy1 - iy0 + 1)
        would_be = int(spans.sum()) - n_pairs
    else:
        would_be = 0

    # Touched storage: tiles holding replicas from BOTH inputs (only
    # those produce candidate pairs).
    rep_r = replicate(data_r, grid)
    rep_s = replicate(data_s, grid)
    common = np.intersect1d(rep_r.tile_ids, rep_s.tile_ids)
    mask_r = np.isin(rep_r.tile_ids, common)
    mask_s = np.isin(rep_s.tile_ids, common)
    entries = int(mask_r.sum()) + int(mask_s.sum())
    objects = int(np.unique(rep_r.obj_ids[mask_r]).shape[0]) + int(
        np.unique(rep_s.obj_ids[mask_s]).shape[0]
    )
    factor = entries / objects if objects else 1.0

    n_parts_, entries_, objects_, factor_ = (
        int(common.shape[0]),
        entries,
        objects,
        factor,
    )
    if strategy == "avoid":
        avoided, eliminated = would_be, stats.duplicates_generated
    else:
        avoided, eliminated = 0, stats.duplicates_generated
    plan = QueryPlan(
        kind="join",
        query={
            "r_objects": len(data_r),
            "s_objects": len(data_s),
            "partitions_per_dim": partitions_per_dim,
            "algorithm": "one_layer" if baseline else algorithm,
        },
        index={
            "family": family,
            "dedup_strategy": strategy,
            "grid": f"{grid.nx}x{grid.ny}",
            "objects": len(data_r) + len(data_s),
        },
        result_count=n_pairs,
        wall_ms=wall_ms,
        tiles_visited=sum(stats.class_scans.values()),
        tiles_by_class=dict(stats.class_scans),
        primary_partitions=stats.partitions_visited,
        touched_partitions=n_parts_,
        touched_entries=entries_,
        touched_objects=objects_,
        replication_factor=factor_,
        duplicates_avoided=avoided,
        duplicates_eliminated=eliminated,
        dedup_strategy=strategy,
        comparisons=stats.comparisons,
        comparisons_saved=max(0, 4 * stats.rects_scanned - stats.comparisons),
        phases=_build_phases(
            tracer, stats, n_pairs, eliminated, strategy
        ),
        stats=stats.as_dict(),
        result=result,
    )
    plan.check()
    return plan
