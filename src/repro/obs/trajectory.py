"""Benchmark-record trajectory: manifests, baselines, regression gating.

The benchmarks under ``benchmarks/`` emit one JSON record per experiment
(``benchmarks/results/BENCH_<name>.json``).  Since schema version 2 every
record carries a *run manifest* — git SHA, Python/NumPy versions,
hostname, bench scale and a dataset fingerprint — so two records can be
judged comparable (same machine, same data) before their absolute
timings are compared.

This module loads those records, compares a current run against a
committed baseline and classifies every metric delta:

* **who-wins ordering** (always-on hard gate): within each series the
  keys are grouped (``method/DATASET`` keys group per dataset) and
  ranked by value.  A *decisive inversion* — a pair whose baseline
  margin exceeded the noise band and whose order flipped by more than
  the noise band in the current run — fails the gate regardless of
  machine, because relative orderings are robust to hardware.
* **timing regressions** (conditional hard gate): a per-metric delta in
  the bad direction beyond the noise band.  Gates hard only when the
  two manifests are *comparable* (same host, interpreter, NumPy, scale
  and dataset fingerprint) **and** the regression is *corroborated* —
  at least two metrics of the same method regressed beyond the band.
  A genuine code regression in a method shows up across its datasets
  and series; transient machine load hits isolated metrics at random,
  so an uncorroborated excursion only warns.  ``strict=True`` gates
  every beyond-band regression regardless of manifests or
  corroboration.

``benchmarks/compare.py`` is the CLI over this module (trend table,
``--update-baseline``, non-zero exit for CI).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.errors import ObsError

__all__ = [
    "SCHEMA_VERSION",
    "BenchRecord",
    "MetricDelta",
    "OrderingFlip",
    "Comparison",
    "load_record",
    "load_records",
    "manifests_comparable",
    "compare_records",
    "format_trend_table",
]

#: current benchmark-record schema.  Version 2 added the run manifest;
#: records without a ``schema`` field predate it and are refused.
SCHEMA_VERSION = 2

#: default relative noise band (percent) under which deltas are ignored.
#: Sized from measured rerun jitter of the best-of-N smoke benchmarks
#: (<20% per metric): methods the paper separates are >75% apart while
#: noise-level pairs stay under ~30%, so 30 splits them cleanly and a
#: genuine 2x slowdown (-50%) still trips the gate.
DEFAULT_NOISE_PCT = 30.0

#: manifest keys that must agree for absolute timings to be comparable.
_COMPARABLE_KEYS = (
    "hostname",
    "python",
    "numpy",
    "bench_scale",
    "bench_queries",
    "dataset_fingerprint",
)

#: series whose name matches one of these substrings is lower-is-better.
_LOWER_IS_BETTER_HINTS = ("latency", "_ms", "_s", "seconds", "time", "build")


@dataclass
class BenchRecord:
    """One parsed ``BENCH_<name>.json`` benchmark record."""

    name: str
    timestamp: str
    schema: int
    manifest: dict
    params: dict
    series: dict
    path: str = ""

    @classmethod
    def from_dict(cls, raw: dict, path: str = "") -> "BenchRecord":
        schema = raw.get("schema")
        if schema is None:
            raise ObsError(
                f"benchmark record {path or raw.get('name', '?')!r} has no "
                f"'schema' field — schema-less records predate the run "
                f"manifest and cannot be compared; regenerate it by "
                f"re-running the benchmark"
            )
        if not isinstance(schema, int) or schema < SCHEMA_VERSION:
            raise ObsError(
                f"benchmark record {path!r} has schema {schema!r}; "
                f"this tooling requires schema >= {SCHEMA_VERSION}"
            )
        for key in ("name", "series"):
            if key not in raw:
                raise ObsError(f"benchmark record {path!r} lacks {key!r}")
        return cls(
            name=raw["name"],
            timestamp=raw.get("timestamp", ""),
            schema=schema,
            manifest=raw.get("manifest", {}) or {},
            params=raw.get("params", {}) or {},
            series=raw["series"],
            path=path,
        )


def load_record(path: str) -> BenchRecord:
    """Load and validate one benchmark record; :class:`ObsError` on
    schema-less or malformed files."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ObsError(f"cannot read benchmark record {path!r}: {exc}") from exc
    if not isinstance(raw, dict):
        raise ObsError(f"benchmark record {path!r} is not a JSON object")
    return BenchRecord.from_dict(raw, path=path)


def load_records(directory: str) -> list[BenchRecord]:
    """Every ``BENCH_*.json`` under ``directory``, sorted by name."""
    records = []
    if not os.path.isdir(directory):
        return records
    for entry in sorted(os.listdir(directory)):
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            records.append(load_record(os.path.join(directory, entry)))
    return records


def manifests_comparable(a: dict, b: dict) -> bool:
    """True when absolute timings from the two manifests may be compared
    (same machine, interpreter, array library, scale and datasets)."""
    if not a or not b:
        return False
    return all(a.get(k) == b.get(k) for k in _COMPARABLE_KEYS)


def _higher_is_better(series_name: str) -> bool:
    lowered = series_name.lower()
    return not any(h in lowered for h in _LOWER_IS_BETTER_HINTS)


@dataclass
class MetricDelta:
    """One metric compared between baseline and current."""

    series: str
    key: str
    baseline: "float | None"
    current: "float | None"
    delta_pct: "float | None"
    higher_is_better: bool
    #: delta beyond the noise band in the bad direction.
    regressed: bool = False
    #: delta beyond the noise band in the good direction.
    improved: bool = False


@dataclass
class OrderingFlip:
    """A decisive who-wins inversion within one series group."""

    series: str
    group: str
    winner_baseline: str
    winner_current: str
    baseline_margin_pct: float
    current_margin_pct: float


@dataclass
class Comparison:
    """Outcome of comparing one record against its baseline."""

    name: str
    deltas: list[MetricDelta] = field(default_factory=list)
    flips: list[OrderingFlip] = field(default_factory=list)
    comparable: bool = False
    #: orderings per (series, group): key list best-to-worst.
    ordering_baseline: dict = field(default_factory=dict)
    ordering_current: dict = field(default_factory=dict)

    @property
    def timing_regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def corroborated_regressions(self) -> list[MetricDelta]:
        """Regressions backed by a second metric of the same method.

        A real code regression in one method degrades it across
        datasets and series; transient machine load degrades isolated
        metrics at random.  Requiring two beyond-band regressions for
        the same method (the part of the key before ``/DATASET``) keeps
        the hard gate quiet under load spikes while still catching an
        injected slowdown, which hits every dataset the method runs on.
        """
        by_method: dict[str, list[MetricDelta]] = {}
        for d in self.timing_regressions:
            by_method.setdefault(_split_key(d.key)[0], []).append(d)
        return [d for ds in by_method.values() if len(ds) >= 2 for d in ds]

    def gate_failures(self, strict: bool = False) -> list[str]:
        """Human-readable hard-gate failures (empty == gate passes).

        Ordering flips always fail; timing regressions fail when the
        manifests are comparable and the regression is corroborated
        (see :attr:`corroborated_regressions`), or unconditionally
        under ``strict``.
        """
        failures = [
            f"who-wins flip in {f.series}[{f.group}]: "
            f"{f.winner_baseline!r} (ahead by {f.baseline_margin_pct:.0f}%) "
            f"overtaken by {f.winner_current!r} "
            f"(now ahead by {f.current_margin_pct:.0f}%)"
            for f in self.flips
        ]
        gated = (
            self.timing_regressions
            if strict
            else (self.corroborated_regressions if self.comparable else [])
        )
        failures.extend(
            f"regression in {d.series}[{d.key}]: "
            f"{d.baseline:.4g} -> {d.current:.4g} ({d.delta_pct:+.1f}%)"
            for d in gated
        )
        return failures


def _split_key(key: str) -> tuple[str, str]:
    """``"method/DATASET"`` -> (method, group); plain keys group as ""."""
    if "/" in key:
        method, group = key.rsplit("/", 1)
        return method, group
    return key, ""


def _flat_series(series: dict) -> dict[str, dict[str, float]]:
    """Keep only series that are flat maps of numeric values."""
    out: dict[str, dict[str, float]] = {}
    for sname, values in series.items():
        if not isinstance(values, dict):
            continue
        numeric = {
            k: float(v)
            for k, v in values.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
        if numeric:
            out[sname] = numeric
    return out


def compare_records(
    current: BenchRecord,
    baseline: BenchRecord,
    noise_pct: float = DEFAULT_NOISE_PCT,
) -> Comparison:
    """Compare a current record against its baseline.

    Produces per-metric deltas (noise-banded), who-wins orderings per
    series group, and decisive ordering flips.  Whether the comparison
    may gate on absolute timings is recorded in
    :attr:`Comparison.comparable`.
    """
    if current.name != baseline.name:
        raise ObsError(
            f"comparing records of different benchmarks: "
            f"{current.name!r} vs {baseline.name!r}"
        )
    comp = Comparison(
        name=current.name,
        comparable=manifests_comparable(current.manifest, baseline.manifest),
    )
    cur_series = _flat_series(current.series)
    base_series = _flat_series(baseline.series)

    for sname in sorted(set(cur_series) | set(base_series)):
        hib = _higher_is_better(sname)
        cur = cur_series.get(sname, {})
        base = base_series.get(sname, {})
        for key in sorted(set(cur) | set(base)):
            b = base.get(key)
            c = cur.get(key)
            delta_pct = None
            regressed = improved = False
            if b is not None and c is not None and b != 0:
                delta_pct = (c - b) / abs(b) * 100.0
                bad = delta_pct < -noise_pct if hib else delta_pct > noise_pct
                good = delta_pct > noise_pct if hib else delta_pct < -noise_pct
                regressed, improved = bad, good
            comp.deltas.append(
                MetricDelta(
                    series=sname,
                    key=key,
                    baseline=b,
                    current=c,
                    delta_pct=delta_pct,
                    higher_is_better=hib,
                    regressed=regressed,
                    improved=improved,
                )
            )

        # -- who-wins ordering per group ------------------------------
        groups: dict[str, list[str]] = {}
        for key in set(cur) & set(base):
            _, group = _split_key(key)
            groups.setdefault(group, []).append(key)
        for group, keys in sorted(groups.items()):
            if len(keys) < 2:
                continue
            order = lambda vals: sorted(  # noqa: E731
                keys, key=lambda k: vals[k], reverse=hib
            )
            base_order = order(base)
            cur_order = order(cur)
            comp.ordering_baseline[(sname, group)] = base_order
            comp.ordering_current[(sname, group)] = cur_order
            comp.flips.extend(
                _decisive_flips(
                    sname, group, base, cur, base_order, hib, noise_pct
                )
            )
    return comp


def _margin_pct(winner: float, loser: float) -> float:
    """Relative margin of the winning value over the losing one."""
    if loser == 0:
        return float("inf") if winner != 0 else 0.0
    return abs(winner - loser) / abs(loser) * 100.0


def _decisive_flips(
    sname: str,
    group: str,
    base: dict[str, float],
    cur: dict[str, float],
    base_order: list[str],
    hib: bool,
    noise_pct: float,
) -> list[OrderingFlip]:
    """Pairs decisively ordered in the baseline and decisively inverted
    now.  Decisive = margin beyond the noise band on both sides; that
    keeps the gate robust to benchmark jitter and different hardware."""
    flips = []
    for i, a in enumerate(base_order):
        for b in base_order[i + 1 :]:
            base_margin = _margin_pct(base[a], base[b])
            if base_margin <= noise_pct:
                continue  # too close in the baseline to rank them
            beats = cur[b] > cur[a] if hib else cur[b] < cur[a]
            if not beats:
                continue
            cur_margin = _margin_pct(cur[b], cur[a])
            if cur_margin <= noise_pct:
                continue  # inverted, but within noise — warn-level only
            flips.append(
                OrderingFlip(
                    series=sname,
                    group=group,
                    winner_baseline=a,
                    winner_current=b,
                    baseline_margin_pct=base_margin,
                    current_margin_pct=cur_margin,
                )
            )
    return flips


def format_trend_table(comp: Comparison, noise_pct: float = DEFAULT_NOISE_PCT) -> str:
    """Aligned per-metric trend table with regression/improvement flags."""
    lines = []
    header = (
        f"{'series':<12} {'metric':<28} {'baseline':>12} "
        f"{'current':>12} {'delta':>9}  flag"
    )
    lines.append(f"== {comp.name} "
                 f"({'comparable run' if comp.comparable else 'different environment'}, "
                 f"noise band ±{noise_pct:g}%) ==")
    lines.append(header)
    lines.append("-" * len(header))
    for d in comp.deltas:
        base = "—" if d.baseline is None else f"{d.baseline:,.1f}"
        cur = "—" if d.current is None else f"{d.current:,.1f}"
        delta = "—" if d.delta_pct is None else f"{d.delta_pct:+.1f}%"
        if d.regressed:
            flag = "REGRESSED" if comp.comparable else "regressed?"
        elif d.improved:
            flag = "improved"
        else:
            flag = ""
        lines.append(
            f"{d.series:<12} {d.key:<28} {base:>12} {cur:>12} {delta:>9}  {flag}"
        )
    for (sname, group), order in sorted(comp.ordering_current.items()):
        base_order = comp.ordering_baseline[(sname, group)]
        label = f"{sname}[{group}]" if group else sname
        names = [_split_key(k)[0] for k in order]
        lines.append(f"who wins {label}: " + " > ".join(names))
        if base_order != order:
            base_names = [_split_key(k)[0] for k in base_order]
            lines.append(f"    (baseline: " + " > ".join(base_names) + ")")
    for f in comp.flips:
        lines.append(
            f"!! decisive flip in {f.series}[{f.group}]: "
            f"{f.winner_baseline} -> {f.winner_current}"
        )
    return "\n".join(lines)
