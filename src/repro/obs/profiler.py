"""Per-query profiling session: latencies, spans and merged counters.

A :class:`Profile` bundles the three observability primitives — a
:class:`~repro.obs.metrics.MetricsRegistry` (per-kind latency
histograms + the merged :class:`~repro.stats.QueryStats` registered as a
source), a :class:`~repro.obs.tracing.Tracer` (the per-phase span tree),
and a query counter — behind one object that
``SpatialCollection.profile()`` yields::

    with collection.profile() as prof:
        for w in windows:
            collection.window(*w)
    print(prof.span_tree())
    prof.latency_summary()["window"]["p95"]

Every query executed while the session is active records its wall time
into ``query.<kind>.latency_ms`` and its work counters into the shared
``stats`` object; index-level spans land in ``prof.tracer``.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Iterator
from time import perf_counter

from repro.obs.export import format_metrics_table, jsonl_events, to_prometheus_text
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import Tracer
from repro.stats import QueryStats

__all__ = ["Profile"]


class Profile:
    """A live profiling session and its structured report."""

    def __init__(self, latency_capacity: int = 4096):
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self.stats = QueryStats()
        self.queries = 0
        #: queries that raised inside :meth:`measure`; each entry is
        #: ``{"kind", "error", "message"}``.  Non-empty => ``truncated``.
        self.errors: list[dict[str, str]] = []
        self._latency_capacity = latency_capacity
        self.registry.register_source("query_stats", self.stats.as_dict)

    @property
    def truncated(self) -> bool:
        """True when at least one measured query raised — the span tree
        and counters then cover only the queries that ran."""
        return bool(self.errors)

    # -- recording ---------------------------------------------------------

    def latency(self, kind: str) -> Histogram:
        """The latency histogram (milliseconds) for one query kind."""
        return self.registry.histogram(
            f"query.{kind}.latency_ms", self._latency_capacity
        )

    @contextmanager
    def measure(self, kind: str) -> "Iterator[QueryStats]":
        """Record one query: yields the per-query :class:`QueryStats` to
        pass into the index, then folds latency + counters into the
        session."""
        local = QueryStats()
        t0 = perf_counter()
        try:
            yield local
        except BaseException as exc:
            self.errors.append(
                {
                    "kind": kind,
                    "error": type(exc).__name__,
                    "message": str(exc),
                }
            )
            self.registry.counter(f"query.{kind}.errors").inc()
            raise
        finally:
            self.latency(kind).observe((perf_counter() - t0) * 1e3)
            self.stats.merge(local)
            self.queries += 1
            self.registry.counter(f"query.{kind}.count").inc()

    # -- report views ------------------------------------------------------

    def latency_summary(self) -> dict[str, dict[str, float]]:
        """``kind -> {count, mean, min, max, p50, p95, p99}`` (ms)."""
        out: dict[str, dict[str, float]] = {}
        for name, metric in self.registry.metrics.items():
            if isinstance(metric, Histogram) and name.startswith("query."):
                kind = name[len("query."):].rsplit(".", 1)[0]
                out[kind] = metric.summary()
        return out

    def phase_totals(self) -> dict[str, float]:
        """Flat span-path -> seconds map (the per-phase time breakdown)."""
        return self.tracer.phase_totals()

    def span_tree(self) -> str:
        """Human-readable rendering of the recorded span tree."""
        return self.tracer.format_tree()

    def metrics(self) -> dict[str, float]:
        """Flat metric snapshot (includes the merged QueryStats source)."""
        return self.registry.collect()

    def metrics_table(self) -> str:
        return format_metrics_table(self.registry, title="profile metrics")

    def summary(self) -> dict:
        """The structured report: everything, JSON-ready."""
        return {
            "queries": self.queries,
            "truncated": self.truncated,
            "errors": list(self.errors),
            "latency_ms": self.latency_summary(),
            "stats": self.stats.as_dict(),
            "phases_s": self.phase_totals(),
        }

    def to_json(self) -> str:
        return json.dumps(self.summary(), sort_keys=True)

    def events(self, meta: "dict | None" = None) -> list[dict]:
        """JSON-lines event records (spans + metrics) for this session."""
        return jsonl_events(self.tracer, self.registry, meta)

    def to_prometheus(self) -> str:
        return to_prometheus_text(self.registry)

    def __repr__(self) -> str:
        return f"Profile(queries={self.queries})"
