"""Observability: tracing spans, metrics registry, profiling, exporters.

The instrumentation substrate behind the paper's analytical claims and
the repo's perf trajectory:

* :mod:`repro.obs.tracing` — hierarchical, aggregating spans wired into
  every index's query hot paths; near-zero cost while disabled;
* :mod:`repro.obs.metrics` — named counters, gauges and streaming
  histograms (p50/p95/p99) under a :class:`MetricsRegistry`;
* :mod:`repro.obs.profiler` — the :class:`Profile` session object that
  ``SpatialCollection.profile()`` yields;
* :mod:`repro.obs.export` — JSON-lines, Prometheus text and console
  table exporters;
* :mod:`repro.obs.explain` — query EXPLAIN: per-class tile accounting,
  candidate flow per phase, duplicate/comparison bookkeeping as a
  :class:`QueryPlan`;
* :mod:`repro.obs.live` — live-serving telemetry: decaying per-tile
  heat maps, the bounded trace ring and the slow-query log behind the
  server's ``heatmap``/``traces``/``slowlog`` admin verbs;
* :mod:`repro.obs.trajectory` — benchmark-record history: manifests,
  baseline comparison and regression detection.

See ``docs/observability.md`` for the span taxonomy and examples.
"""

from repro.obs.explain import (
    ExplainStats,
    PhaseStep,
    QueryPlan,
    explain_disk,
    explain_join,
    explain_knn,
    explain_window,
)
from repro.obs.export import (
    format_metrics_table,
    format_span_tree,
    jsonl_events,
    to_prometheus_text,
    write_jsonl,
)
from repro.obs.live import (
    HeatStats,
    LiveTelemetry,
    SlowQueryLog,
    TileHeatAccumulator,
    TraceRing,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import Profile
from repro.obs import tracing
from repro.obs.tracing import SpanNode, Tracer
from repro.obs.trajectory import (
    BenchRecord,
    Comparison,
    MetricDelta,
    compare_records,
    load_record,
    load_records,
)

__all__ = [
    "BenchRecord",
    "Comparison",
    "Counter",
    "ExplainStats",
    "MetricDelta",
    "Gauge",
    "HeatStats",
    "Histogram",
    "LiveTelemetry",
    "MetricsRegistry",
    "PhaseStep",
    "Profile",
    "QueryPlan",
    "SlowQueryLog",
    "SpanNode",
    "TileHeatAccumulator",
    "TraceRing",
    "Tracer",
    "compare_records",
    "explain_disk",
    "explain_join",
    "explain_knn",
    "explain_window",
    "load_record",
    "load_records",
    "tracing",
    "format_metrics_table",
    "format_span_tree",
    "jsonl_events",
    "to_prometheus_text",
    "write_jsonl",
]
