"""Exporters: JSON-lines events, Prometheus text, aligned console tables.

Three machine/human formats over the same observability state:

* :func:`jsonl_events` / :func:`write_jsonl` — one JSON object per line
  (span records from a :class:`~repro.obs.tracing.Tracer`, metric
  records from a :class:`~repro.obs.metrics.MetricsRegistry`), the
  format the growth loop's perf-trajectory tooling ingests;
* :func:`to_prometheus_text` — Prometheus exposition-style text dump;
* :func:`format_metrics_table` — the aligned monospace table style of
  :mod:`repro.bench.reporting`, reused so profiling output matches the
  benchmark reports.
"""

from __future__ import annotations

import io
import json
import re
from contextlib import redirect_stdout
from typing import IO, Iterable

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = [
    "jsonl_events",
    "write_jsonl",
    "to_prometheus_text",
    "format_metrics_table",
    "format_span_tree",
]

_PROM_SANITISE = re.compile(r"[^a-zA-Z0-9_:]")


def jsonl_events(
    tracer: "Tracer | None" = None,
    registry: "MetricsRegistry | None" = None,
    meta: "dict | None" = None,
) -> list[dict]:
    """Flat event records from a tracer and/or registry.

    ``meta`` (dataset name, parameters, timestamp...) is merged into
    every record, so a log of many runs stays self-describing.
    """
    records: list[dict] = []
    if tracer is not None:
        records.extend(tracer.events())
    if registry is not None:
        for name, value in registry.collect().items():
            records.append({"type": "metric", "name": name, "value": value})
    if meta:
        records = [{**meta, **r} for r in records]
    return records


def write_jsonl(records: Iterable[dict], target: "str | IO[str]") -> int:
    """Write records as JSON lines to a path or open file; returns count."""
    own = isinstance(target, str)
    fh: IO[str] = open(target, "w", encoding="utf-8") if own else target  # type: ignore[arg-type]
    n = 0
    try:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")
            n += 1
    finally:
        if own:
            fh.close()
    return n


def _prom_name(name: str) -> str:
    sanitised = _PROM_SANITISE.sub("_", name)
    if not sanitised or sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def to_prometheus_text(
    registry: MetricsRegistry, prefix: str = "repro"
) -> str:
    """Prometheus exposition-style dump of a registry.

    Counters and gauges become single samples; histograms expose
    ``_count``/``_sum`` plus ``quantile``-labelled samples (the summary
    convention — quantiles are computed here, not server-side).
    """
    lines: list[str] = []
    for name, metric in registry.metrics.items():
        full = f"{prefix}_{_prom_name(name)}"
        if isinstance(metric, Histogram):
            lines.append(f"# TYPE {full} summary")
            if metric.count:  # quantiles are undefined (ObsError) when empty
                for q, label in ((50.0, "0.5"), (95.0, "0.95"), (99.0, "0.99")):
                    lines.append(
                        f'{full}{{quantile="{label}"}} {metric.percentile(q):.9g}'
                    )
            lines.append(f"{full}_sum {metric.total:.9g}")
            lines.append(f"{full}_count {metric.count}")
        else:
            lines.append(f"# TYPE {full} {metric.kind}")
            lines.append(f"{full} {metric.value:.9g}")
    for name, value in registry.collect().items():
        if name in registry.metrics:
            continue
        base = name.rsplit(".", 1)[0]
        if base in registry.metrics:
            continue  # histogram expansion, already exported above
        full = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {full} untyped")
        lines.append(f"{full} {float(value):.9g}")
    return "\n".join(lines) + "\n"


def format_metrics_table(
    registry: MetricsRegistry, title: str = "metrics"
) -> str:
    """The registry snapshot as an aligned console table (reporting style)."""
    from repro.bench.reporting import print_table  # lazy: avoids obs <-> bench cycle

    snapshot = registry.collect()
    rows = [[name, snapshot[name]] for name in sorted(snapshot)]
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        print_table(title, ["metric", "value"], rows)
    return buffer.getvalue()


def format_span_tree(tracer: Tracer) -> str:
    """Convenience alias for :meth:`Tracer.format_tree`."""
    return tracer.format_tree()
