"""Live serving telemetry: tile heat, request traces, slow-query capture.

Three bounded, allocation-light collectors that a long-lived server can
leave enabled permanently (the serving layer wires them behind
``ServerConfig.telemetry``):

* :class:`TileHeatAccumulator` — per-tile work counters (times scanned,
  rows touched, duplicate candidates avoided) over the grid, with
  optional exponential decay on a monotonic clock so the snapshot
  reflects *recent* load, not process history.  This is the online
  input the ROADMAP's adaptive-granularity auto-tuner needs: the same
  per-tile scan accounting EXPLAIN computes offline, but accumulated
  continuously from live traffic.
* :class:`HeatStats` — a :class:`~repro.stats.QueryStats` subclass that
  routes the per-tile hooks (:meth:`~repro.stats.QueryStats.visit_tile`
  / :meth:`~repro.stats.QueryStats.visit_tiles`) into an accumulator.
  Scalar visits are buffered in a plain list and flushed with one
  ``np.add.at`` per few thousand visits, so the per-tile cost on the
  query hot path is one ``list.append``.
* :class:`TraceRing` / :class:`SlowQueryLog` — fixed-capacity rings of
  finished request traces and over-threshold captures.  The slow-query
  log stores the request arguments so an EXPLAIN plan can be computed
  *lazily* when an operator asks for the log, never on the serving hot
  path.

Everything here is single-writer by design: the serving event loop is
the only recorder, and the admin verbs that read snapshots run on the
same loop, so no locking is needed (unlike :mod:`repro.obs.metrics`,
which is read concurrently by exporter threads).
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ObsError
from repro.stats import QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.typing import NDArray

__all__ = [
    "HeatStats",
    "LiveTelemetry",
    "SlowQueryLog",
    "TileHeatAccumulator",
    "TraceRing",
]

#: scalar visits buffered in :class:`HeatStats` before one vectorised flush.
_FLUSH_EVERY = 2048


class TileHeatAccumulator:
    """Per-tile work counters over an ``nx`` x ``ny`` grid with decay.

    Three float64 arrays of ``nx * ny`` cells accumulate, per tile:

    * ``scans`` — how many times a query visited the tile;
    * ``rows`` — rows actually scanned there (after class pruning);
    * ``present`` — rows live in the tile at visit time (all classes).

    ``present - rows`` is the per-tile duplicate-candidate work the
    two-layer class pruning avoided (rows a 1-layer scan would have
    touched and then deduplicated).  With ``half_life_s > 0`` every
    counter decays exponentially on the monotonic clock, applied lazily
    in batches (never more than once per ``half_life_s / 64`` to keep
    the record path cheap), so the heat map tracks the recent workload
    instead of growing monotonically for the life of the process.
    """

    def __init__(self, nx: int, ny: int, half_life_s: float = 600.0):
        if nx < 1 or ny < 1:
            raise ObsError(f"grid must be at least 1x1, got {nx}x{ny}")
        if half_life_s < 0:
            raise ObsError(f"half_life_s must be >= 0, got {half_life_s}")
        self.nx = nx
        self.ny = ny
        self.half_life_s = half_life_s
        self.scans = np.zeros(nx * ny, dtype=np.float64)
        self.rows = np.zeros(nx * ny, dtype=np.float64)
        self.present = np.zeros(nx * ny, dtype=np.float64)
        #: total visits ever recorded (not decayed; monotonic).
        self.total_visits = 0
        self._last_decay = time.monotonic()
        self._decay_every = (half_life_s / 64.0) if half_life_s else 0.0

    # -- recording ---------------------------------------------------------

    def _maybe_decay(self) -> None:
        if not self.half_life_s:
            return
        now = time.monotonic()
        dt = now - self._last_decay
        if dt < self._decay_every:
            return
        factor = 0.5 ** (dt / self.half_life_s)
        self.scans *= factor
        self.rows *= factor
        self.present *= factor
        self._last_decay = now

    def record(self, tile_id: int, scanned: int, present: int) -> None:
        """Account one tile visit (``scanned`` <= ``present`` rows)."""
        self._maybe_decay()
        self.scans[tile_id] += 1.0
        self.rows[tile_id] += scanned
        self.present[tile_id] += present
        self.total_visits += 1

    def record_many(
        self,
        tile_ids: "NDArray[np.int64]",
        scanned: "NDArray[np.int64]",
        present: "NDArray[np.int64]",
    ) -> None:
        """Vectorised :meth:`record` — one call per fused-kernel region."""
        self._maybe_decay()
        visited = present > 0
        np.add.at(self.scans, tile_ids, visited.astype(np.float64))
        np.add.at(self.rows, tile_ids, scanned)
        np.add.at(self.present, tile_ids, present)
        self.total_visits += int(np.count_nonzero(visited))

    def reset(self) -> None:
        """Zero every counter (decay clock restarts now)."""
        self.scans[:] = 0.0
        self.rows[:] = 0.0
        self.present[:] = 0.0
        self.total_visits = 0
        self._last_decay = time.monotonic()

    # -- views -------------------------------------------------------------

    def top(self, k: int = 20) -> list[dict[str, Any]]:
        """The ``k`` hottest tiles by scan count, hottest first.

        Each entry carries the tile id, its grid coordinates and the
        three (decayed) counters plus the derived ``avoided`` figure.
        """
        self._maybe_decay()
        hot = np.flatnonzero(self.scans)
        if hot.shape[0] == 0:
            return []
        order = hot[np.argsort(self.scans[hot])[::-1][:k]]
        out: list[dict[str, Any]] = []
        for tid in order:
            tid = int(tid)
            out.append(
                {
                    "tile": tid,
                    "ix": tid % self.nx,
                    "iy": tid // self.nx,
                    "scans": round(float(self.scans[tid]), 3),
                    "rows": round(float(self.rows[tid]), 3),
                    "avoided": round(
                        float(self.present[tid] - self.rows[tid]), 3
                    ),
                }
            )
        return out

    def snapshot(self, top: int = 20) -> dict[str, Any]:
        """JSON-ready heat snapshot: totals plus the top-K hot tiles."""
        self._maybe_decay()
        return {
            "nx": self.nx,
            "ny": self.ny,
            "half_life_s": self.half_life_s,
            "tiles_hot": int(np.count_nonzero(self.scans)),
            "total_visits": self.total_visits,
            "total_scans": round(float(self.scans.sum()), 3),
            "total_rows": round(float(self.rows.sum()), 3),
            "total_avoided": round(
                float(self.present.sum() - self.rows.sum()), 3
            ),
            "tiles": self.top(top),
        }

    def __repr__(self) -> str:
        return (
            f"TileHeatAccumulator({self.nx}x{self.ny}, "
            f"visits={self.total_visits}, "
            f"hot={int(np.count_nonzero(self.scans))})"
        )


class HeatStats(QueryStats):
    """Query stats that feed the per-tile hooks into a heat accumulator.

    A plain subclass like :class:`~repro.obs.explain.ExplainStats`: the
    accumulator and buffer are instance attributes, not dataclass
    fields, so ``merge``/``diff``/``__add__`` keep operating on the
    counter set they know about.  Scalar visits are buffered and flushed
    in one vectorised pass per :data:`_FLUSH_EVERY` visits (and by
    :meth:`flush` before any snapshot is taken).
    """

    def __init__(self, heat: TileHeatAccumulator, **kwargs: int):
        super().__init__(**kwargs)
        self.heat = heat
        self._buf: list[tuple[int, int, int]] = []

    def visit_tile(self, tile_id: int, scanned: int, present: int) -> None:
        buf = self._buf
        buf.append((tile_id, scanned, present))
        if len(buf) >= _FLUSH_EVERY:
            self.flush()

    def visit_tiles(
        self,
        tile_ids: "NDArray[np.int64]",
        scanned: "NDArray[np.int64]",
        present: "NDArray[np.int64]",
    ) -> None:
        self.heat.record_many(tile_ids, scanned, present)

    def flush(self) -> None:
        """Drain the scalar-visit buffer into the accumulator."""
        buf = self._buf
        if not buf:
            return
        arr = np.asarray(buf, dtype=np.int64)
        self._buf = []
        self.heat.record_many(arr[:, 0], arr[:, 1], arr[:, 2])


class TraceRing:
    """Fixed-capacity ring of finished request-trace records."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ObsError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: "deque[dict[str, Any]]" = deque(maxlen=capacity)
        self.total = 0

    def append(self, record: dict[str, Any]) -> None:
        self._ring.append(record)
        self.total += 1

    def last(self, n: int = 20) -> list[dict[str, Any]]:
        """The most recent ``n`` records, newest first."""
        if n <= 0:
            return []
        out = list(self._ring)[-n:]
        out.reverse()
        return out

    def __len__(self) -> int:
        return len(self._ring)


class SlowQueryLog:
    """Bounded capture of requests slower than a latency threshold.

    Entries keep the request's verb/args and phase breakdown; the
    ``explain`` slot stays ``None`` until an operator reads the log
    (the serving layer computes the plan lazily at read time, against
    the then-current snapshot — never on the request path).
    """

    def __init__(self, capacity: int = 128, threshold_ms: float = 100.0):
        if capacity < 1:
            raise ObsError(f"capacity must be >= 1, got {capacity}")
        if threshold_ms < 0:
            raise ObsError(f"threshold_ms must be >= 0, got {threshold_ms}")
        self.capacity = capacity
        self.threshold_ms = threshold_ms
        self._ring: "deque[dict[str, Any]]" = deque(maxlen=capacity)
        self.total = 0

    def maybe_capture(self, record: dict[str, Any]) -> bool:
        """Capture ``record`` when its latency breaches the threshold."""
        latency = record.get("latency_ms")
        if latency is None or latency < self.threshold_ms:
            return False
        entry = dict(record)
        entry.setdefault("explain", None)
        self._ring.append(entry)
        self.total += 1
        return True

    def entries(self, limit: int = 20) -> list[dict[str, Any]]:
        """The most recent ``limit`` captures, newest (slow) first."""
        if limit <= 0:
            return []
        out = list(self._ring)[-limit:]
        out.reverse()
        return out

    def __len__(self) -> int:
        return len(self._ring)


class LiveTelemetry:
    """The serving layer's telemetry bundle: heat + traces + slowlog.

    One instance per :class:`~repro.server.service.SpatialQueryService`;
    all recording happens on the service's event loop, so nothing here
    takes a lock.  :meth:`finish` is the single choke point a completed
    request flows through.
    """

    def __init__(
        self,
        nx: int,
        ny: int,
        trace_capacity: int = 256,
        slowlog_capacity: int = 128,
        slowlog_ms: float = 100.0,
        half_life_s: float = 600.0,
    ):
        self.heat = TileHeatAccumulator(nx, ny, half_life_s=half_life_s)
        self.stats = HeatStats(self.heat)
        self.traces = TraceRing(trace_capacity)
        self.slowlog = SlowQueryLog(slowlog_capacity, slowlog_ms)

    def finish(self, record: dict[str, Any]) -> None:
        """Retain one finished request trace (and capture it if slow)."""
        self.traces.append(record)
        self.slowlog.maybe_capture(record)

    def heat_snapshot(self, top: int = 20) -> dict[str, Any]:
        """Flush pending visits and snapshot the heat accumulator."""
        self.stats.flush()
        return self.heat.snapshot(top)
