"""Named metrics: counters, gauges and streaming histograms.

A :class:`MetricsRegistry` owns named metric instruments and external
*sources* (callables returning ``name -> number`` mappings, e.g.
``QueryStats.as_dict``).  :meth:`MetricsRegistry.collect` flattens
everything into one dictionary, which the exporters
(:mod:`repro.obs.export`) turn into Prometheus text, JSON lines, or an
aligned console table.

Histograms keep exact running aggregates (count, sum, min, max) over the
full stream plus a fixed-capacity ring buffer of the most recent samples
for quantiles — p50/p95/p99 over a sliding window, the standard
trade-off for long-lived processes.

Every instrument is **thread-safe**: record paths (``inc``/``set``/
``observe``), snapshots (``summary``/``collect``) and ``reset`` take a
per-instrument lock, and the registry's get-or-create path takes a
registry lock.  The serving layer records from the event loop while
``stats`` requests, exporters and test harnesses read concurrently;
without the locks a histogram ring could tear mid-``collect``.
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping

import numpy as np

from repro.errors import ObsError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; got {n}")
        with self._lock:
            self.value += n

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A value that goes up and down (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self.value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self.value -= n

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Streaming histogram: exact aggregates + recent-window quantiles.

    Thread-safe: ``observe`` and ``reset`` mutate under the instrument
    lock; ``summary``/``percentile`` copy the ring under the lock and
    compute quantiles outside it.
    """

    __slots__ = (
        "name", "capacity", "count", "total", "_min", "_max", "_ring",
        "_pos", "_lock",
    )

    kind = "histogram"

    def __init__(self, name: str, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._ring: list[float] = []
        self._pos = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._ring) < self.capacity:
                self._ring.append(value)
            else:
                self._ring[self._pos] = value
                self._pos = (self._pos + 1) % self.capacity

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile (``q`` in [0, 100]) over the
        retained sample window.

        Raises :class:`~repro.errors.ObsError` when no sample has been
        observed — a percentile of nothing is not 0, and returning 0 made
        empty and genuinely-instant distributions indistinguishable
        (the same trap the ``Timed.avg_ms`` fix closed for plain timers).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            window = list(self._ring)
        if not window:
            raise ObsError(
                f"histogram {self.name!r} has no samples; "
                "percentile is undefined on an empty histogram"
            )
        return float(np.percentile(np.asarray(window), q))

    def summary(self) -> dict[str, float]:
        """Aggregate snapshot; quantile keys are omitted when empty."""
        with self._lock:
            count = self.count
            total = self.total
            lo = self._min
            hi = self._max
            window = list(self._ring)
        out: dict[str, float] = {
            "count": count,
            "mean": total / count if count else 0.0,
            "min": lo if count else 0.0,
            "max": hi if count else 0.0,
        }
        if window:
            arr = np.asarray(window)
            out["p50"] = float(np.percentile(arr, 50.0))
            out["p95"] = float(np.percentile(arr, 95.0))
            out["p99"] = float(np.percentile(arr, 99.0))
        return out

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self._min = float("inf")
            self._max = float("-inf")
            self._ring = []
            self._pos = 0

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Named metric instruments plus pluggable external sources."""

    def __init__(self):
        self._metrics: dict[str, "Counter | Gauge | Histogram"] = {}
        self._sources: dict[str, Callable[[], Mapping[str, float]]] = {}
        self._lock = threading.Lock()

    # -- instrument accessors (get-or-create) ------------------------------

    def _get(self, name: str, cls, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, capacity: int = 1024) -> Histogram:
        return self._get(name, Histogram, capacity)

    def register_source(
        self, name: str, fn: Callable[[], Mapping[str, float]]
    ) -> None:
        """Register a callable polled at collection time.

        ``fn`` returns a flat ``key -> number`` mapping; its values appear
        in :meth:`collect` under ``<name>.<key>``.  This is how a
        :class:`~repro.stats.QueryStats` object plugs in::

            registry.register_source("query_stats", stats.as_dict)
        """
        with self._lock:
            self._sources[name] = fn

    # -- views -------------------------------------------------------------

    @property
    def metrics(self) -> dict[str, "Counter | Gauge | Histogram"]:
        with self._lock:
            return dict(self._metrics)

    def collect(self) -> dict[str, float]:
        """Flat snapshot: counters/gauges by name, histograms expanded to
        ``name.count/mean/min/max/p50/p95/p99``, sources to
        ``source.key``."""
        with self._lock:
            metrics = list(self._metrics.items())
            sources = list(self._sources.items())
        out: dict[str, float] = {}
        for name, metric in metrics:
            if isinstance(metric, Histogram):
                for key, value in metric.summary().items():
                    out[f"{name}.{key}"] = value
            else:
                out[name] = metric.value
        for src_name, fn in sources:
            for key, value in fn().items():
                out[f"{src_name}.{key}"] = value
        return out

    def reset(self) -> None:
        """Zero every owned instrument (sources are left alone)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if isinstance(metric, Gauge):
                metric.set(0.0)
            else:
                metric.reset()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(metrics={len(self._metrics)}, "
            f"sources={len(self._sources)})"
        )
