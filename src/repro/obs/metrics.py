"""Named metrics: counters, gauges and streaming histograms.

A :class:`MetricsRegistry` owns named metric instruments and external
*sources* (callables returning ``name -> number`` mappings, e.g.
``QueryStats.as_dict``).  :meth:`MetricsRegistry.collect` flattens
everything into one dictionary, which the exporters
(:mod:`repro.obs.export`) turn into Prometheus text, JSON lines, or an
aligned console table.

Histograms keep exact running aggregates (count, sum, min, max) over the
full stream plus a fixed-capacity ring buffer of the most recent samples
for quantiles — p50/p95/p99 over a sliding window, the standard
trade-off for long-lived processes.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.errors import ObsError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; got {n}")
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A value that goes up and down."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Streaming histogram: exact aggregates + recent-window quantiles."""

    __slots__ = ("name", "capacity", "count", "total", "_min", "_max", "_ring", "_pos")

    kind = "histogram"

    def __init__(self, name: str, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._ring: list[float] = []
        self._pos = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._ring) < self.capacity:
            self._ring.append(value)
        else:
            self._ring[self._pos] = value
            self._pos = (self._pos + 1) % self.capacity

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile (``q`` in [0, 100]) over the
        retained sample window.

        Raises :class:`~repro.errors.ObsError` when no sample has been
        observed — a percentile of nothing is not 0, and returning 0 made
        empty and genuinely-instant distributions indistinguishable
        (the same trap the ``Timed.avg_ms`` fix closed for plain timers).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._ring:
            raise ObsError(
                f"histogram {self.name!r} has no samples; "
                "percentile is undefined on an empty histogram"
            )
        return float(np.percentile(np.asarray(self._ring), q))

    def summary(self) -> dict[str, float]:
        """Aggregate snapshot; quantile keys are omitted when empty."""
        out: dict[str, float] = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        if self._ring:
            out["p50"] = self.percentile(50.0)
            out["p95"] = self.percentile(95.0)
            out["p99"] = self.percentile(99.0)
        return out

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._ring = []
        self._pos = 0

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Named metric instruments plus pluggable external sources."""

    def __init__(self):
        self._metrics: dict[str, "Counter | Gauge | Histogram"] = {}
        self._sources: dict[str, Callable[[], Mapping[str, float]]] = {}

    # -- instrument accessors (get-or-create) ------------------------------

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, capacity: int = 1024) -> Histogram:
        return self._get(name, Histogram, capacity)

    def register_source(
        self, name: str, fn: Callable[[], Mapping[str, float]]
    ) -> None:
        """Register a callable polled at collection time.

        ``fn`` returns a flat ``key -> number`` mapping; its values appear
        in :meth:`collect` under ``<name>.<key>``.  This is how a
        :class:`~repro.stats.QueryStats` object plugs in::

            registry.register_source("query_stats", stats.as_dict)
        """
        self._sources[name] = fn

    # -- views -------------------------------------------------------------

    @property
    def metrics(self) -> dict[str, "Counter | Gauge | Histogram"]:
        return dict(self._metrics)

    def collect(self) -> dict[str, float]:
        """Flat snapshot: counters/gauges by name, histograms expanded to
        ``name.count/mean/min/max/p50/p95/p99``, sources to
        ``source.key``."""
        out: dict[str, float] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                for key, value in metric.summary().items():
                    out[f"{name}.{key}"] = value
            else:
                out[name] = metric.value
        for src_name, fn in self._sources.items():
            for key, value in fn().items():
                out[f"{src_name}.{key}"] = value
        return out

    def reset(self) -> None:
        """Zero every owned instrument (sources are left alone)."""
        for metric in self._metrics.values():
            if isinstance(metric, Gauge):
                metric.set(0.0)
            else:
                metric.reset()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(metrics={len(self._metrics)}, "
            f"sources={len(self._sources)})"
        )
