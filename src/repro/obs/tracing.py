"""Hierarchical tracing spans with a near-zero-cost disabled path.

Every query path in the library is annotated with *spans*::

    from repro.obs.tracing import span as trace_span

    with trace_span("query.window"):
        with trace_span("filter.lookup"):
            ...
        with trace_span("filter.scan"):
            ...

When no tracer is active (the default), :func:`span` returns a shared
no-op context manager — one global load, one call, zero allocations —
so instrumented hot paths stay on their fast path.  When a tracer is
active, spans accumulate into a tree of :class:`SpanNode` aggregates:
entering a span whose name already exists under the current parent
re-uses that node (``calls += 1``, ``total_s += dt``), so a workload of
thousands of queries produces a tree of a dozen nodes, one per
(parent, phase) pair — the per-phase breakdown the paper's figures need.

The module-level tracer is what the index hot paths consult.  Activate
one for a scoped region with :func:`activate` (used by
``SpatialCollection.profile()``), or globally with :func:`enable` /
:func:`disable`.  Span stacks are thread-local, so the parallel query
evaluators record correctly; sibling threads attach under the same root.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator
from time import perf_counter

__all__ = [
    "SpanNode",
    "Tracer",
    "span",
    "enable",
    "disable",
    "active",
    "activate",
]


class SpanNode:
    """One aggregated span: a named phase under a fixed parent path."""

    __slots__ = ("name", "calls", "total_s", "children")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.children: dict[str, SpanNode] = {}

    @property
    def self_s(self) -> float:
        """Time spent in this span outside any child span."""
        return self.total_s - sum(c.total_s for c in self.children.values())

    def as_dict(self) -> dict:
        """Recursive plain-data view (JSON-ready)."""
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "children": [c.as_dict() for c in self.children.values()],
        }

    def __repr__(self) -> str:
        return (
            f"SpanNode({self.name!r}, calls={self.calls}, "
            f"total_s={self.total_s:.6f}, children={len(self.children)})"
        )


class _SpanCtx:
    """Context manager for one entry into an aggregated span."""

    __slots__ = ("_tracer", "_name", "_node", "_t0")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_SpanCtx":
        stack = self._tracer._stack()
        parent = stack[-1]
        node = parent.children.get(self._name)
        if node is None:
            node = parent.children.setdefault(self._name, SpanNode(self._name))
        stack.append(node)
        self._node = node
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        dt = perf_counter() - self._t0
        node = self._node
        node.calls += 1
        node.total_s += dt
        self._tracer._stack().pop()
        return False


class _NoopSpan:
    """Shared do-nothing span: the disabled-tracer fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class Tracer:
    """Collects spans into an aggregated tree rooted at :attr:`root`."""

    def __init__(self):
        self.root = SpanNode("root")
        self._local = threading.local()

    def _stack(self) -> list[SpanNode]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = [self.root]
            self._local.stack = stack
        return stack

    def span(self, name: str) -> _SpanCtx:
        return _SpanCtx(self, name)

    def reset(self) -> None:
        """Drop every recorded span (open spans keep recording)."""
        self.root = SpanNode("root")
        self._local = threading.local()

    # -- views -------------------------------------------------------------

    @property
    def spans(self) -> dict[str, SpanNode]:
        """Top-level spans (the tree without the synthetic root)."""
        return self.root.children

    def find(self, path: str) -> "SpanNode | None":
        """Node at a ``/``-separated path, e.g. ``query.window/filter.scan``."""
        node = self.root
        for part in path.split("/"):
            node = node.children.get(part)  # type: ignore[assignment]
            if node is None:
                return None
        return node

    def phase_totals(self) -> dict[str, float]:
        """Flat ``path -> total seconds`` map over the whole tree."""
        out: dict[str, float] = {}

        def walk(node: SpanNode, prefix: str) -> None:
            for child in node.children.values():
                path = f"{prefix}{child.name}"
                out[path] = out.get(path, 0.0) + child.total_s
                walk(child, path + "/")

        walk(self.root, "")
        return out

    def events(self) -> list[dict]:
        """Flat span records (path, calls, totals) for JSON-lines export."""
        records: list[dict] = []

        def walk(node: SpanNode, prefix: str) -> None:
            for child in node.children.values():
                path = f"{prefix}{child.name}"
                records.append(
                    {
                        "type": "span",
                        "path": path,
                        "calls": child.calls,
                        "total_s": child.total_s,
                        "self_s": child.self_s,
                    }
                )
                walk(child, path + "/")

        walk(self.root, "")
        return records

    def format_tree(self) -> str:
        """Aligned, indented rendering of the span tree."""
        lines: list[str] = []
        lines.append(f"{'span':<44} {'calls':>8} {'total[ms]':>11} {'self[ms]':>10}")
        lines.append("-" * 76)

        def walk(node: SpanNode, depth: int) -> None:
            for child in node.children.values():
                label = "  " * depth + child.name
                lines.append(
                    f"{label:<44} {child.calls:>8} "
                    f"{child.total_s * 1e3:>11.3f} {child.self_s * 1e3:>10.3f}"
                )
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)


#: the module-level tracer the instrumented hot paths consult.
_ACTIVE: "Tracer | None" = None


def span(name: str) -> "_SpanCtx | _NoopSpan":
    """A span under the active tracer, or the shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return tracer.span(name)


def enable(tracer: "Tracer | None" = None) -> Tracer:
    """Install (and return) the module-level tracer."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def disable() -> None:
    """Remove the module-level tracer (spans become no-ops again)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> "Tracer | None":
    """The currently installed tracer, if any."""
    return _ACTIVE


@contextmanager
def activate(tracer: Tracer) -> "Iterator[Tracer]":
    """Scoped tracer installation; restores the previous tracer on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
