"""Paper-style table/series printers for the benchmark harness.

Every benchmark prints, next to pytest-benchmark's own statistics, the
rows or series the corresponding paper table/figure reports, so the
output can be compared against the paper side by side (EXPERIMENTS.md
records that comparison).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["print_table", "print_series", "fmt"]


def fmt(value) -> str:
    """Human-ready cell formatting for mixed numeric/text values."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def print_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence]
) -> None:
    """Print an aligned monospace table under a title banner."""
    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    print()


def print_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: dict[str, Sequence],
) -> None:
    """Print one figure panel: x values in the first column, one series
    per further column (what the paper plots as lines)."""
    headers = [x_label] + list(series.keys())
    rows = [
        [x] + [series[name][i] for name in series]
        for i, x in enumerate(xs)
    ]
    print_table(title, headers, rows)
