"""Measurement utilities for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["Timed", "time_call", "throughput", "total_time"]

T = TypeVar("T")


@dataclass(frozen=True)
class Timed:
    """A measured workload run."""

    seconds: float
    queries: int

    @property
    def qps(self) -> float:
        """Throughput in queries per second (the paper's headline metric)."""
        return self.queries / self.seconds if self.seconds > 0 else float("inf")

    @property
    def avg_ms(self) -> float:
        """Average per-query latency in milliseconds."""
        return self.seconds / self.queries * 1e3 if self.queries else 0.0


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once; returns ``(result, seconds)``."""
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def throughput(run_one: Callable[[T], object], items: Sequence[T]) -> Timed:
    """Run ``run_one`` over every item; returns the measured workload."""
    t0 = time.perf_counter()
    for item in items:
        run_one(item)
    return Timed(time.perf_counter() - t0, len(items))


def total_time(fns: Iterable[Callable[[], object]]) -> float:
    """Total wall time of running every thunk once."""
    t0 = time.perf_counter()
    for fn in fns:
        fn()
    return time.perf_counter() - t0
