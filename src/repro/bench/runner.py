"""Measurement utilities for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["Timed", "time_call", "throughput", "profiled_throughput", "total_time"]

T = TypeVar("T")


@dataclass(frozen=True)
class Timed:
    """A measured workload run."""

    seconds: float
    queries: int

    @property
    def qps(self) -> float:
        """Throughput in queries per second (the paper's headline metric).

        A zero-second clock reading (coarse timers, empty workloads)
        yields ``0.0`` rather than ``inf`` — "no throughput measured",
        which downstream arithmetic and JSON serialisation both survive.
        """
        return self.queries / self.seconds if self.seconds > 0 else 0.0

    @property
    def avg_ms(self) -> float:
        """Average per-query latency in milliseconds.

        Raises :class:`ValueError` on an empty run — an average over
        zero queries is undefined, and silently reporting ``0.0`` would
        fake a perfect latency.
        """
        if not self.queries:
            raise ValueError("avg_ms is undefined for a run of 0 queries")
        return self.seconds / self.queries * 1e3


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once; returns ``(result, seconds)``."""
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def throughput(
    run_one: Callable[[T], object], items: Sequence[T], repeats: int = 1
) -> Timed:
    """Run ``run_one`` over every item; returns the measured workload.

    ``repeats > 1`` measures the whole pass that many times and keeps
    the fastest (best-of-N) — the standard defence against transient
    machine load, which only ever makes a run *slower*.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for item in items:
            run_one(item)
        best = min(best, time.perf_counter() - t0)
    return Timed(best, len(items))


def profiled_throughput(
    run_one: Callable[[T], object], items: Sequence[T]
) -> "tuple[Timed, dict[str, float]]":
    """Like :func:`throughput`, but with per-phase tracing enabled.

    Returns ``(timed, phase_totals)`` where ``phase_totals`` maps
    "/"-joined span paths (e.g. ``"query.window/filter.scan"``) to the
    seconds spent there across the whole workload.  Slower than
    :func:`throughput` (spans are live); use for breakdowns, not for
    headline numbers.
    """
    # Lazy import: avoids an obs <-> bench cycle at module load.
    from repro.obs.tracing import Tracer, activate

    tracer = Tracer()
    with activate(tracer):
        t0 = time.perf_counter()
        for item in items:
            run_one(item)
        elapsed = time.perf_counter() - t0
    return Timed(elapsed, len(items)), tracer.phase_totals()


def total_time(fns: Iterable[Callable[[], object]]) -> float:
    """Total wall time of running every thunk once."""
    t0 = time.perf_counter()
    for fn in fns:
        fn()
    return time.perf_counter() - t0
