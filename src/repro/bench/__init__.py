"""Benchmark harness: measurement, reporting and shared workloads."""

from repro.bench.reporting import fmt, print_series, print_table
from repro.bench.runner import (
    Timed,
    profiled_throughput,
    throughput,
    time_call,
    total_time,
)
from repro.bench.workloads import (
    BEST_GRANULARITY,
    bench_query_count,
    bench_scale,
    disk_workload,
    synthetic_dataset,
    tiger_dataset,
    window_workload,
)

__all__ = [
    "Timed",
    "profiled_throughput",
    "throughput",
    "time_call",
    "total_time",
    "print_table",
    "print_series",
    "fmt",
    "tiger_dataset",
    "synthetic_dataset",
    "window_workload",
    "disk_workload",
    "bench_scale",
    "bench_query_count",
    "BEST_GRANULARITY",
]
