"""Shared, cached datasets and query workloads for the benchmarks.

Benchmarks run at a configurable fraction of the paper's data scale
(Python being 1-3 orders slower than the C++ original, DESIGN.md):

* ``REPRO_BENCH_SCALE``   — fraction of each TIGER dataset's paper
  cardinality to generate (default ``1/200`` → ROADS 100K, EDGES 350K,
  TIGER 490K objects).
* ``REPRO_BENCH_QUERIES`` — queries per workload (default 2000; the
  paper uses 10K).
* ``REPRO_DATASET_CACHE``  — optional directory for an on-disk ``.npz``
  cache of generated datasets, keyed by generator parameters and scale.
  Lets CI restore datasets across runs instead of regenerating them.

Datasets and workloads are memoised so the many benchmarks sharing them
pay generation cost once per process.
"""

from __future__ import annotations

import os
from functools import lru_cache

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.datasets.queries import (
    DiskQuery,
    generate_disk_queries,
    generate_window_queries,
)
from repro.datasets.synthetic import generate_synthetic
from repro.datasets.tiger import generate_tiger_standin
from repro.geometry.mbr import Rect

__all__ = [
    "bench_scale",
    "bench_query_count",
    "tiger_dataset",
    "synthetic_dataset",
    "window_workload",
    "disk_workload",
    "BEST_GRANULARITY",
]

#: granularity found best for the Python port (coarser than the paper's
#: thousands-per-dimension optimum because per-tile overhead is higher;
#: Fig. 7's sweep demonstrates the plateau either way).
BEST_GRANULARITY = 64


def bench_scale() -> float:
    """Dataset scale factor (fraction of paper cardinality)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", 1.0 / 200.0))


def bench_query_count() -> int:
    """Number of queries per benchmark workload."""
    return int(os.environ.get("REPRO_BENCH_QUERIES", 2000))


def _disk_cached(cache_key: str, generate) -> RectDataset:
    """Memoise ``generate()`` as ``.npz`` under ``REPRO_DATASET_CACHE``.

    No-op (straight generation) when the environment variable is unset.
    Only MBR arrays are cached — datasets carrying exact geometries skip
    the cache.  A corrupt or unreadable cache entry falls back to
    regeneration and is rewritten.
    """
    cache_dir = os.environ.get("REPRO_DATASET_CACHE")
    if not cache_dir:
        return generate()
    path = os.path.join(cache_dir, f"{cache_key}.npz")
    if os.path.exists(path):
        try:
            with np.load(path) as npz:
                return RectDataset(
                    npz["xl"], npz["yl"], npz["xu"], npz["yu"], None
                )
        except (OSError, ValueError, KeyError):
            pass  # corrupt entry: regenerate below
    data = generate()
    if data.geometries is None:
        os.makedirs(cache_dir, exist_ok=True)
        # np.savez appends ".npz" unless the name already ends with it.
        tmp = f"{path}.{os.getpid()}.tmp.npz"
        np.savez_compressed(
            tmp, xl=data.xl, yl=data.yl, xu=data.xu, yu=data.yu
        )
        os.replace(tmp, path)
    return data


@lru_cache(maxsize=None)
def tiger_dataset(name: str, with_geometries: bool = False) -> RectDataset:
    """The cached Table III stand-in dataset (ROADS / EDGES / TIGER)."""
    scale = bench_scale()
    if with_geometries:
        # Exact geometries are only needed by the refinement experiment;
        # cap the object count so geometry construction stays tractable.
        scale = min(scale, 1.0 / 1000.0)
    generate = lambda: generate_tiger_standin(  # noqa: E731
        name, scale=scale, with_geometries=with_geometries, seed=2015
    )
    if with_geometries:
        return generate()
    return _disk_cached(f"tiger_{name}_s{scale:g}_seed2015", generate)


@lru_cache(maxsize=None)
def synthetic_dataset(
    n: int, area: float, distribution: str = "uniform"
) -> RectDataset:
    """Cached Table IV synthetic dataset."""
    return _disk_cached(
        f"synthetic_n{n}_a{area:g}_{distribution}_seed42",
        lambda: generate_synthetic(
            n, area=area, distribution=distribution, seed=42
        ),
    )


@lru_cache(maxsize=None)
def window_workload(
    dataset_key: str, relative_area_percent: float, n: "int | None" = None
) -> tuple[Rect, ...]:
    """Cached window-query workload over a named dataset.

    ``dataset_key`` is ``"ROADS"``/``"EDGES"``/``"TIGER"`` or
    ``"synthetic:<n>:<area>:<distribution>"``.
    """
    data = _resolve(dataset_key)
    count = n if n is not None else bench_query_count()
    return tuple(
        generate_window_queries(data, count, relative_area_percent, seed=7)
    )


@lru_cache(maxsize=None)
def disk_workload(
    dataset_key: str, relative_area_percent: float, n: "int | None" = None
) -> tuple[DiskQuery, ...]:
    """Cached disk-query workload over a named dataset."""
    data = _resolve(dataset_key)
    count = n if n is not None else bench_query_count()
    return tuple(
        generate_disk_queries(data, count, relative_area_percent, seed=7)
    )


def _resolve(dataset_key: str) -> RectDataset:
    if dataset_key in ("ROADS", "EDGES", "TIGER"):
        return tiger_dataset(dataset_key)
    if dataset_key.startswith("synthetic:"):
        _, n, area, distribution = dataset_key.split(":")
        return synthetic_dataset(int(n), float(area), distribution)
    raise KeyError(f"unknown dataset key {dataset_key!r}")
