"""Shared, cached datasets and query workloads for the benchmarks.

Benchmarks run at a configurable fraction of the paper's data scale
(Python being 1-3 orders slower than the C++ original, DESIGN.md):

* ``REPRO_BENCH_SCALE``   — fraction of each TIGER dataset's paper
  cardinality to generate (default ``1/200`` → ROADS 100K, EDGES 350K,
  TIGER 490K objects).
* ``REPRO_BENCH_QUERIES`` — queries per workload (default 2000; the
  paper uses 10K).

Datasets and workloads are memoised so the many benchmarks sharing them
pay generation cost once per process.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.datasets.dataset import RectDataset
from repro.datasets.queries import (
    DiskQuery,
    generate_disk_queries,
    generate_window_queries,
)
from repro.datasets.synthetic import generate_synthetic
from repro.datasets.tiger import generate_tiger_standin
from repro.geometry.mbr import Rect

__all__ = [
    "bench_scale",
    "bench_query_count",
    "tiger_dataset",
    "synthetic_dataset",
    "window_workload",
    "disk_workload",
    "BEST_GRANULARITY",
]

#: granularity found best for the Python port (coarser than the paper's
#: thousands-per-dimension optimum because per-tile overhead is higher;
#: Fig. 7's sweep demonstrates the plateau either way).
BEST_GRANULARITY = 64


def bench_scale() -> float:
    """Dataset scale factor (fraction of paper cardinality)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", 1.0 / 200.0))


def bench_query_count() -> int:
    """Number of queries per benchmark workload."""
    return int(os.environ.get("REPRO_BENCH_QUERIES", 2000))


@lru_cache(maxsize=None)
def tiger_dataset(name: str, with_geometries: bool = False) -> RectDataset:
    """The cached Table III stand-in dataset (ROADS / EDGES / TIGER)."""
    scale = bench_scale()
    if with_geometries:
        # Exact geometries are only needed by the refinement experiment;
        # cap the object count so geometry construction stays tractable.
        scale = min(scale, 1.0 / 1000.0)
    return generate_tiger_standin(
        name, scale=scale, with_geometries=with_geometries, seed=2015
    )


@lru_cache(maxsize=None)
def synthetic_dataset(
    n: int, area: float, distribution: str = "uniform"
) -> RectDataset:
    """Cached Table IV synthetic dataset."""
    return generate_synthetic(n, area=area, distribution=distribution, seed=42)


@lru_cache(maxsize=None)
def window_workload(
    dataset_key: str, relative_area_percent: float, n: "int | None" = None
) -> tuple[Rect, ...]:
    """Cached window-query workload over a named dataset.

    ``dataset_key`` is ``"ROADS"``/``"EDGES"``/``"TIGER"`` or
    ``"synthetic:<n>:<area>:<distribution>"``.
    """
    data = _resolve(dataset_key)
    count = n if n is not None else bench_query_count()
    return tuple(
        generate_window_queries(data, count, relative_area_percent, seed=7)
    )


@lru_cache(maxsize=None)
def disk_workload(
    dataset_key: str, relative_area_percent: float, n: "int | None" = None
) -> tuple[DiskQuery, ...]:
    """Cached disk-query workload over a named dataset."""
    data = _resolve(dataset_key)
    count = n if n is not None else bench_query_count()
    return tuple(
        generate_disk_queries(data, count, relative_area_percent, seed=7)
    )


def _resolve(dataset_key: str) -> RectDataset:
    if dataset_key in ("ROADS", "EDGES", "TIGER"):
        return tiger_dataset(dataset_key)
    if dataset_key.startswith("synthetic:"):
        _, n, area, distribution = dataset_key.split(":")
        return synthetic_dataset(int(n), float(area), distribution)
    raise KeyError(f"unknown dataset key {dataset_key!r}")
