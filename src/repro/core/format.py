"""The columnar on-disk index container (format version 2).

A ``.npz`` archive pays decompression plus per-column extraction at
every boot; the fused query matrix and the per-class sort orders were
then rebuilt from scratch on top.  This module replaces that with a
versioned **memmap-native** container: a fixed 64-byte header, a fixed
64-byte-per-entry section table, a small JSON metadata blob, and then
one 64-byte-aligned slab per named array.  Loading is ``mmap`` + view
construction — zero deserialization, zero copies — so a multi-GB index
"reads" in well under a millisecond and pages in lazily as queries
touch rows.  Shard workers map the very same file (see
:func:`repro.shard.shm.attach_arena`), so K processes share one page
cache instead of K copies of the columns.

Layout::

    offset 0    header   (64 B): magic "REPROIDX", version, n_sections,
                                 meta_len
    offset 64   section table:   n_sections x 64 B entries
                                 (name, dtype, absolute offset, shape)
    then        metadata JSON:   kind/nx/ny/domain/n_objects/...
    then        slabs:           each 64-byte aligned, in table order

Alignment matches the shared-memory arena (and every SIMD/cache-line
expectation a compiled kernel has); all integers are little-endian.

Every reader **must** go through :func:`read_header` (directly or via
:func:`read_container`): it validates the magic and the format version
before any slab is interpreted.  The repro-lint rule REP007 enforces
exactly this — modules under ``repro/core`` / ``repro/grid`` may not
open index files with raw ``np.load`` / ``np.memmap`` calls unless the
module goes through these helpers.
"""

from __future__ import annotations

import json
import os
from typing import Any

import numpy as np

from repro.errors import DatasetError

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "SectionSpec",
    "is_columnar",
    "read_container",
    "read_header",
    "write_container",
]

MAGIC = b"REPROIDX"

#: on-disk format version of the columnar container.  Version 1 is the
#: legacy ``.npz`` layout (readable via :mod:`repro.core.persistence`,
#: never written anymore); version 2 is this container.
FORMAT_VERSION = 2

_ALIGN = 64

_HEADER_DTYPE = np.dtype(
    [
        ("magic", "S8"),
        ("version", "<u4"),
        ("n_sections", "<u4"),
        ("meta_len", "<u8"),
        ("reserved", "V40"),
    ]
)  # exactly 64 bytes

_SECTION_DTYPE = np.dtype(
    [
        ("name", "S24"),
        ("dtype", "S8"),
        ("offset", "<u8"),
        ("ndim", "<u4"),
        ("pad", "V4"),
        ("shape0", "<u8"),
        ("shape1", "<u8"),
    ]
)  # exactly 64 bytes

assert _HEADER_DTYPE.itemsize == 64
assert _SECTION_DTYPE.itemsize == 64


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


class SectionSpec:
    """One named slab: where it lives and how to view it."""

    __slots__ = ("name", "dtype", "offset", "shape")

    def __init__(
        self, name: str, dtype: np.dtype, offset: int, shape: tuple[int, ...]
    ):
        self.name = name
        self.dtype = dtype
        self.offset = offset
        self.shape = shape

    @property
    def nbytes(self) -> int:
        n = self.dtype.itemsize
        for dim in self.shape:
            n *= dim
        return n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SectionSpec({self.name!r}, {self.dtype}, offset={self.offset}, "
            f"shape={self.shape})"
        )


def is_columnar(path: "str | os.PathLike[str]") -> bool:
    """Whether ``path`` starts with the columnar container magic."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def write_container(
    path: "str | os.PathLike[str]",
    meta: dict[str, Any],
    sections: dict[str, np.ndarray],
) -> None:
    """Write a version-:data:`FORMAT_VERSION` container to ``path``.

    ``sections`` preserves insertion order on disk; every array is laid
    out C-contiguous in a 64-byte-aligned slab.  ``meta`` must be
    JSON-serialisable (it is the only part of the file that is parsed,
    not mapped — keep it to scalars describing the index).
    """
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    table = np.zeros(len(sections), dtype=_SECTION_DTYPE)
    arrays: list[np.ndarray] = []
    pos = _aligned(64 + table.nbytes + len(meta_bytes))
    for i, (name, arr) in enumerate(sections.items()):
        arr = np.ascontiguousarray(arr)
        if arr.ndim not in (1, 2):
            raise DatasetError(
                f"section {name!r}: only 1-D/2-D arrays are supported, "
                f"got ndim={arr.ndim}"
            )
        encoded = name.encode("ascii")
        if len(encoded) > 24:
            raise DatasetError(f"section name {name!r} exceeds 24 bytes")
        dtype_str = arr.dtype.str
        if len(dtype_str) > 8:
            raise DatasetError(
                f"section {name!r}: dtype {dtype_str!r} is not storable"
            )
        table[i]["name"] = encoded
        table[i]["dtype"] = dtype_str.encode("ascii")
        table[i]["offset"] = pos
        table[i]["ndim"] = arr.ndim
        table[i]["shape0"] = arr.shape[0]
        table[i]["shape1"] = arr.shape[1] if arr.ndim == 2 else 0
        arrays.append(arr)
        pos = _aligned(pos + arr.nbytes)

    header = np.zeros(1, dtype=_HEADER_DTYPE)
    header[0]["magic"] = MAGIC
    header[0]["version"] = FORMAT_VERSION
    header[0]["n_sections"] = len(sections)
    header[0]["meta_len"] = len(meta_bytes)

    with open(path, "wb") as fh:
        fh.write(header.tobytes())
        fh.write(table.tobytes())
        fh.write(meta_bytes)
        for spec, arr in zip(table, arrays):
            fh.seek(int(spec["offset"]))
            fh.write(arr.tobytes())
        # Pad the tail so the file length is aligned too (mapping a
        # truncated final slab would raise on some platforms).
        end = _aligned(fh.tell())
        if end > fh.tell():
            fh.write(b"\0" * (end - fh.tell()))


def read_header(
    path: "str | os.PathLike[str]",
) -> tuple[int, dict[str, Any], dict[str, SectionSpec]]:
    """Validate and read the container header; the REP007 choke point.

    Returns ``(version, meta, sections)`` after checking the magic, the
    format version and the structural sanity of the section table, so a
    caller can never silently interpret the slabs of an archive written
    by a different (or future) format — the failure is a structured
    :class:`~repro.errors.DatasetError` instead of garbage results.
    """
    size = os.path.getsize(path)
    with open(path, "rb") as fh:
        raw = fh.read(64)
        if len(raw) < 64 or raw[: len(MAGIC)] != MAGIC:
            raise DatasetError(f"{path}: not a repro columnar index container")
        header = np.frombuffer(raw, dtype=_HEADER_DTYPE)[0]
        version = int(header["version"])
        if version != FORMAT_VERSION:
            raise DatasetError(
                f"{path}: unsupported index format version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        n_sections = int(header["n_sections"])
        meta_len = int(header["meta_len"])
        table_bytes = fh.read(n_sections * _SECTION_DTYPE.itemsize)
        if len(table_bytes) != n_sections * _SECTION_DTYPE.itemsize:
            raise DatasetError(f"{path}: truncated section table")
        meta_bytes = fh.read(meta_len)
        if len(meta_bytes) != meta_len:
            raise DatasetError(f"{path}: truncated metadata block")
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DatasetError(f"{path}: corrupt metadata block") from exc
    table = np.frombuffer(table_bytes, dtype=_SECTION_DTYPE)
    sections: dict[str, SectionSpec] = {}
    for entry in table:
        name = entry["name"].decode("ascii")
        shape = (int(entry["shape0"]),)
        if int(entry["ndim"]) == 2:
            shape = (int(entry["shape0"]), int(entry["shape1"]))
        spec = SectionSpec(
            name,
            np.dtype(entry["dtype"].decode("ascii")),
            int(entry["offset"]),
            shape,
        )
        if spec.offset % _ALIGN or spec.offset + spec.nbytes > _aligned(size):
            raise DatasetError(
                f"{path}: section {name!r} extends past the file end "
                "(truncated or corrupt container)"
            )
        sections[name] = spec
    return version, meta, sections


def read_container(
    path: "str | os.PathLike[str]",
) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Map a container; return ``(meta, views)`` of read-only arrays.

    One shared ``np.memmap`` backs every view, so nothing is read from
    disk here beyond the header/table/metadata pages — slab bytes page
    in lazily on first access.  All views are ``writeable=False``
    (``mode="r"``): the loaded index is a pinned snapshot.
    """
    _version, meta, sections = read_header(path)
    # The single shared mapping below is the memmap fast path the REP007
    # helper contract funnels every caller through (read_header above
    # has already validated magic + version for this file handle).
    mm = np.memmap(path, dtype=np.uint8, mode="r")
    views: dict[str, np.ndarray] = {}
    for name, spec in sections.items():
        flat = mm[spec.offset : spec.offset + spec.nbytes]
        views[name] = flat.view(spec.dtype).reshape(spec.shape)
    return meta, views
