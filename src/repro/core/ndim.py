"""m-dimensional generalisation of the two-layer scheme (Section IV-D).

The paper indexes 2D MBRs, but the secondary partitioning generalises
directly to minimum bounding boxes (MBBs) of arbitrary dimensionality
``m``: a tile is re-partitioned into ``2**m`` classes, one per subset of
dimensions in which a box starts *before* the tile.  The class code is a
bitmask: bit ``d`` set means the box starts before the tile in dimension
``d`` (so code 0 is the 2D class A, and in 2D bit 0 = y / bit 1 = x
reproduces the A/B/C/D codes of :mod:`repro.grid.base`).

Lemmas 1-2 generalise to: *if the query starts before tile T in dimension
d, skip every class whose bit d is set.*  Lemmas 3-4 apply per dimension
unchanged, giving at most one comparison per dimension for queries
spanning more than one tile per dimension.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import DatasetError, InvalidGridError, InvalidQueryError
from repro.stats import QueryStats

__all__ = ["NDimTwoLayerGrid"]

_EMPTY_IDS = np.empty(0, dtype=np.int64)


class NDimTwoLayerGrid:
    """Two-layer regular grid over m-dimensional boxes.

    Parameters
    ----------
    lows, highs:
        arrays of shape ``(n, m)``: per-object lower / upper corners.
    partitions_per_dim:
        number of grid partitions along every dimension.
    domain:
        optional ``(m, 2)`` array of per-dimension ``[lo, hi]`` bounds;
        defaults to the unit hypercube.
    """

    def __init__(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        partitions_per_dim: int = 16,
        domain: "np.ndarray | None" = None,
    ):
        lows = np.ascontiguousarray(lows, dtype=np.float64)
        highs = np.ascontiguousarray(highs, dtype=np.float64)
        if lows.ndim != 2 or lows.shape != highs.shape:
            raise DatasetError("lows/highs must be (n, m) arrays of equal shape")
        if np.any(lows > highs):
            raise DatasetError("boxes contain inverted intervals (low > high)")
        if partitions_per_dim < 1:
            raise InvalidGridError(
                f"partitions_per_dim must be >= 1, got {partitions_per_dim}"
            )
        self.n, self.m = lows.shape
        if self.m < 1:
            raise DatasetError("boxes need at least one dimension")
        self.k = partitions_per_dim
        if domain is None:
            domain = np.stack(
                [np.zeros(self.m), np.ones(self.m)], axis=1
            )
        domain = np.asarray(domain, dtype=np.float64)
        if domain.shape != (self.m, 2) or np.any(domain[:, 0] >= domain[:, 1]):
            raise InvalidGridError("domain must be (m, 2) with lo < hi per dim")
        self.domain = domain
        self.tile_width = (domain[:, 1] - domain[:, 0]) / self.k
        self.lows = lows
        self.highs = highs
        # tile key (tuple of m indices) -> {class_code: row-index array}
        self._tiles: dict[tuple[int, ...], dict[int, np.ndarray]] = {}
        self._bulk_load()

    # -- tile arithmetic ---------------------------------------------------

    def _cell_of(self, values: np.ndarray) -> np.ndarray:
        """Per-dimension tile index of coordinates ``values`` (n, m)."""
        cells = ((values - self.domain[:, 0]) / self.tile_width).astype(np.int64)
        return np.clip(cells, 0, self.k - 1)

    # -- construction ---------------------------------------------------------

    def _bulk_load(self) -> None:
        if self.n == 0:
            return
        lo_cells = self._cell_of(self.lows)   # (n, m)
        hi_cells = self._cell_of(self.highs)  # (n, m)
        buckets: dict[tuple[int, ...], dict[int, list[int]]] = {}
        for i in range(self.n):
            ranges = [
                range(int(lo_cells[i, d]), int(hi_cells[i, d]) + 1)
                for d in range(self.m)
            ]
            for cell in itertools.product(*ranges):
                code = 0
                for d in range(self.m):
                    if cell[d] > lo_cells[i, d]:
                        code |= 1 << d
                buckets.setdefault(cell, {}).setdefault(code, []).append(i)
        self._tiles = {
            cell: {
                code: np.asarray(rows, dtype=np.int64)
                for code, rows in classes.items()
            }
            for cell, classes in buckets.items()
        }

    # -- introspection -----------------------------------------------------------

    @property
    def replica_count(self) -> int:
        return sum(
            rows.shape[0]
            for classes in self._tiles.values()
            for rows in classes.values()
        )

    def class_histogram(self) -> dict[int, int]:
        """Stored entries per class code (code 0 == one entry per object)."""
        hist: dict[int, int] = {}
        for classes in self._tiles.values():
            for code, rows in classes.items():
                hist[code] = hist.get(code, 0) + rows.shape[0]
        return hist

    def __repr__(self) -> str:
        return (
            f"NDimTwoLayerGrid(n={self.n}, m={self.m}, k={self.k}, "
            f"replicas={self.replica_count})"
        )

    # -- window (box) queries ----------------------------------------------------

    def box_query(
        self,
        q_low: np.ndarray,
        q_high: np.ndarray,
        stats: "QueryStats | None" = None,
    ) -> np.ndarray:
        """Ids of all boxes intersecting the query box — duplicate-free.

        The generalised Lemmas 1-2 select classes, the generalised Lemmas
        3-4 select at most one comparison per dimension on boundary tiles.
        """
        q_low = np.asarray(q_low, dtype=np.float64)
        q_high = np.asarray(q_high, dtype=np.float64)
        if q_low.shape != (self.m,) or q_high.shape != (self.m,):
            raise InvalidQueryError(
                f"query corners must have shape ({self.m},)"
            )
        if np.any(q_low > q_high):
            raise InvalidQueryError("query box has inverted intervals")
        if self.n == 0:
            return _EMPTY_IDS

        first = self._cell_of(q_low[None, :])[0]
        last = self._cell_of(q_high[None, :])[0]
        pieces: list[np.ndarray] = []
        for cell in itertools.product(
            *[range(int(first[d]), int(last[d]) + 1) for d in range(self.m)]
        ):
            classes = self._tiles.get(cell)
            if classes is None:
                continue
            if stats is not None:
                stats.partitions_visited += 1
            at_first = [cell[d] == first[d] for d in range(self.m)]
            at_last = [cell[d] == last[d] for d in range(self.m)]
            # Classes allowed here: bit d may be set only where at_first[d].
            allowed_bits = [
                (0, 1 << d) if at_first[d] else (0,) for d in range(self.m)
            ]
            for bits in itertools.product(*allowed_bits):
                code = sum(bits)
                rows = classes.get(code)
                if rows is None:
                    continue
                if stats is not None:
                    stats.rects_scanned += rows.shape[0]
                mask: "np.ndarray | None" = None
                for d in range(self.m):
                    starts_inside = not (code & (1 << d))
                    if at_first[d]:
                        m_ = self.highs[rows, d] >= q_low[d]
                        mask = m_ if mask is None else mask & m_
                        if stats is not None:
                            stats.comparisons += rows.shape[0]
                    if at_last[d] and starts_inside:
                        m_ = self.lows[rows, d] <= q_high[d]
                        mask = m_ if mask is None else mask & m_
                        if stats is not None:
                            stats.comparisons += rows.shape[0]
                pieces.append(rows if mask is None else rows[mask])
        if not pieces:
            return _EMPTY_IDS
        return np.concatenate(pieces)

    def brute_force(self, q_low: np.ndarray, q_high: np.ndarray) -> np.ndarray:
        """Ground-truth box intersection scan (testing / verification)."""
        mask = np.all(
            (self.highs >= np.asarray(q_low)) & (self.lows <= np.asarray(q_high)),
            axis=1,
        )
        return np.flatnonzero(mask).astype(np.int64)
