"""Persistence for built grid indexes.

Two on-disk formats live behind one API:

* **columnar** (default, format version 2, :mod:`repro.core.format`) — a
  memmap-native container: fixed header + section table, then 64-byte
  aligned slabs holding the packed CSR base (``offsets`` + key-sorted
  columns), the precomputed fused query matrix, the 2-layer⁺ per-class
  sort orders and, for collections, the dataset columns.  Loading is
  ``mmap`` + view construction — zero deserialization, zero copies — so
  a multi-GB index boots in milliseconds and pages in lazily as queries
  touch rows.  Shard workers map the very same file
  (:func:`repro.shard.shm.attach_arena`), sharing one page cache.

* **npz** (legacy, format version 1) — the original compressed archive
  of per-row ``(tile_id, code)`` columns.  Still read transparently
  (:func:`load_index` sniffs the container magic) and still writable
  via ``format="npz"`` for compatibility and benchmarking.

Saving an index that carries un-compacted state (a live delta overlay
or tombstones) would either persist rows twice or silently drop the
updates; ``if_dirty`` controls the contract — auto-``compact()`` (the
default) or a structured :class:`~repro.errors.IndexStateError`.

Every loaded column is ``writeable=False`` regardless of format or
backend: a loaded index is a pinned snapshot, and updates go through
the delta overlay / tombstone machinery, never in-place.
"""

from __future__ import annotations

import os
import time
from typing import Any

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.errors import DatasetError, IndexStateError
from repro.geometry.mbr import Rect
from repro.grid.base import GridPartitioner
from repro.grid.one_layer import OneLayerGrid
from repro.grid.storage import PackedStore, TileTable, group_rows
from repro.core import format as container
from repro.core.two_layer import TwoLayerGrid
from repro.core.two_layer_plus import TwoLayerPlusGrid

__all__ = [
    "save_index",
    "load_index",
    "save_collection",
    "load_collection",
    "SAVE_FORMATS",
    "IF_DIRTY_MODES",
]

_NPZ_FORMAT_VERSION = 1
_KINDS = {
    "OneLayerGrid": OneLayerGrid,
    "TwoLayerGrid": TwoLayerGrid,
    "TwoLayerPlusGrid": TwoLayerPlusGrid,
}

SAVE_FORMATS = ("columnar", "npz")
IF_DIRTY_MODES = ("compact", "error")

#: container sections holding the 2-layer⁺ per-column sort orders, in
#: source-column order (xl, yl, xu, yu) — the gather order
#: :meth:`TwoLayerPlusGrid._decomposed_from_orders` expects.
_ORDER_SECTIONS = ("sort_xl", "sort_yl", "sort_xu", "sort_yu")


def _n_classes(index: "TwoLayerGrid | OneLayerGrid") -> int:
    return 4 if isinstance(index, TwoLayerGrid) else 1


def _check_clean(index: "TwoLayerGrid | OneLayerGrid", if_dirty: str) -> None:
    """Enforce the un-compacted-state contract before any save.

    Packed indexes accumulate inserts in a delta overlay and deletes as
    tombstones; both must be folded before the base is persisted.  The
    legacy backend has no base/overlay split, so it is never dirty.
    """
    if if_dirty not in IF_DIRTY_MODES:
        raise ValueError(
            f"unknown if_dirty mode {if_dirty!r}; expected one of "
            f"{IF_DIRTY_MODES}"
        )
    if index._store is None:
        return
    overlay = sum(len(t) for t in _overlay_tables(index))
    if not overlay and not index._store.n_dead:
        return
    if if_dirty == "compact":
        index.compact()
        return
    raise IndexStateError(
        f"cannot save {type(index).__name__} with un-compacted state "
        f"({overlay} overlay rows, {index._store.n_dead} tombstones); "
        "call compact() first or save with if_dirty='compact'"
    )


def _overlay_tables(index: "TwoLayerGrid | OneLayerGrid"):
    if isinstance(index, TwoLayerGrid):
        for tables in index._tiles.values():
            for table in tables:
                if table is not None:
                    yield table
    else:
        yield from index._tiles.values()


def _flatten(index: "TwoLayerGrid | OneLayerGrid") -> dict[str, np.ndarray]:
    tile_ids: list[np.ndarray] = []
    codes: list[np.ndarray] = []
    cols: list[list[np.ndarray]] = [[], [], [], [], []]

    def emit(tile_id: int, code: int, table: TileTable) -> None:
        columns = table.columns()
        n = columns[4].shape[0]
        if n == 0:
            return
        tile_ids.append(np.full(n, tile_id, dtype=np.int64))
        codes.append(np.full(n, code, dtype=np.int64))
        for slot, col in zip(cols, columns):
            slot.append(col)

    n_classes = _n_classes(index)
    if index._store is not None:
        # Packed fast path: the base's live rows come out in fused-key
        # order, so an archive with an empty delta reloads zero-copy.
        keys, xl, yl, xu, yu, ids = index._store.flat_live_rows()
        if keys.shape[0]:
            tile_ids.append(keys // n_classes)
            codes.append(keys % n_classes)
            for slot, col in zip(cols, (xl, yl, xu, yu, ids)):
                slot.append(col)
    if isinstance(index, TwoLayerGrid):
        for tile_id, tables in index._tiles.items():
            for code, table in enumerate(tables):
                if table is not None:
                    emit(tile_id, code, table)
    else:
        for tile_id, table in index._tiles.items():
            emit(tile_id, 0, table)

    def cat(parts, dtype):
        if not parts:
            return np.empty(0, dtype=dtype)
        return np.concatenate(parts)

    return {
        "tile_ids": cat(tile_ids, np.int64),
        "codes": cat(codes, np.int64),
        "xl": cat(cols[0], np.float64),
        "yl": cat(cols[1], np.float64),
        "xu": cat(cols[2], np.float64),
        "yu": cat(cols[3], np.float64),
        "ids": cat(cols[4], np.int64),
    }


def _check_kind(index) -> str:
    kind = type(index).__name__
    if kind not in _KINDS:
        raise DatasetError(f"save_index supports {sorted(_KINDS)}, got {kind}")
    return kind


# -- npz writer (legacy format, version 1) ---------------------------------


def _save_npz(index, path, extra: "dict[str, np.ndarray] | None") -> None:
    kind = _check_kind(index)
    flat = _flatten(index)
    # An explicit file handle keeps the path exact (np.savez would
    # silently append ".npz"), so save(path) / load(path) round-trip.
    with open(path, "wb") as fh:
        np.savez_compressed(
            fh,
            version=np.int64(_NPZ_FORMAT_VERSION),
            kind=np.array(kind),
            nx=np.int64(index.grid.nx),
            ny=np.int64(index.grid.ny),
            domain=np.asarray(index.grid.domain.as_tuple()),
            n_objects=np.int64(len(index)),
            **flat,
            **(extra or {}),
        )


# -- columnar writer (format version 2) ------------------------------------


def _packed_view(
    index: "TwoLayerGrid | OneLayerGrid",
) -> "tuple[PackedStore, np.ndarray]":
    """``(store, fast_q)`` of the index, building a CSR view if needed.

    A clean packed index contributes its own base and (cached or fresh)
    query matrix.  A legacy-backend index is flattened into a temporary
    packed twin — archives are layout-agnostic, so a legacy index still
    writes the columnar format any packed process can map.
    """
    if index._store is not None and not index._tiles:
        q = index._fast_q
        if q is None:
            q = index._build_fast_q()
        return index._store, q
    flat = _flatten(index)
    n_classes = _n_classes(index)
    keys = flat["tile_ids"] * n_classes + flat["codes"]
    store = PackedStore.from_rows(
        n_classes * index.grid.nx * index.grid.ny,
        n_classes,
        keys,
        flat["xl"],
        flat["yl"],
        flat["xu"],
        flat["yu"],
        flat["ids"],
    )
    twin_cls = TwoLayerGrid if isinstance(index, TwoLayerGrid) else OneLayerGrid
    twin = twin_cls(index.grid, storage="packed")
    twin._store = store
    twin._n_objects = index._n_objects
    return store, twin._build_fast_q()


def _save_columnar(
    index, path, extra: "dict[str, np.ndarray] | None", if_dirty: str
) -> None:
    kind = _check_kind(index)
    _check_clean(index, if_dirty)
    if index._store is None and index._packed:
        index.compact()  # materialise the (possibly empty) CSR base
    store, fast_q = _packed_view(index)
    sections: dict[str, np.ndarray] = {
        "offsets": store.offsets,
        "xl": store.xl,
        "yl": store.yl,
        "xu": store.xu,
        "yu": store.yu,
        "ids": store.ids,
        "fast_q": fast_q,
    }
    if isinstance(index, TwoLayerPlusGrid):
        n = len(index)
        for name, col in zip(
            ("g_xl", "g_yl", "g_xu", "g_yu"),
            (index._g_xl, index._g_yl, index._g_xu, index._g_yu),
        ):
            sections[name] = col[:n]
        # Per-column sort orders, segment-sorted by partition: the rows
        # of group g land at positions offsets[g]:offsets[g+1], already
        # ascending in the coordinate — the StartSort/EndSort idea.
        keys = np.repeat(
            np.arange(store.offsets.shape[0] - 1, dtype=np.int64),
            np.diff(store.offsets),
        )
        for name, col in zip(
            _ORDER_SECTIONS, (store.xl, store.yl, store.xu, store.yu)
        ):
            sections[name] = np.lexsort((col, keys)).astype(
                np.int64, copy=False
            )
    if extra:
        sections.update(extra)
    meta: dict[str, Any] = {
        "kind": kind,
        "n_classes": store.n_classes,
        "n_objects": len(index),
    }
    meta.update(index.grid.meta())
    container.write_container(path, meta, sections)


def save_index(
    index: "TwoLayerGrid | OneLayerGrid",
    path: "str | os.PathLike[str]",
    *,
    format: str = "columnar",
    if_dirty: str = "compact",
) -> None:
    """Persist a built grid index to ``path``.

    ``format`` picks the on-disk layout: ``"columnar"`` (the default
    memmap container, see :mod:`repro.core.format`) or ``"npz"`` (the
    legacy compressed archive).  ``if_dirty`` controls what happens when
    the index carries a live delta overlay or tombstones:
    ``"compact"`` folds them first, ``"error"`` raises
    :class:`~repro.errors.IndexStateError`.
    """
    if format == "columnar":
        _save_columnar(index, path, None, if_dirty)
    elif format == "npz":
        _check_clean(index, if_dirty)
        _save_npz(index, path, None)
    else:
        raise ValueError(
            f"unknown save format {format!r}; expected one of {SAVE_FORMATS}"
        )


def save_collection(
    index: "TwoLayerGrid | OneLayerGrid",
    data: RectDataset,
    path: "str | os.PathLike[str]",
    *,
    format: str = "columnar",
    if_dirty: str = "compact",
) -> None:
    """Persist an index *plus its dataset columns* in one archive.

    The dataset rows are stored positionally (including rows whose index
    entries were deleted — ids stay positional), so a loaded collection
    answers every query, including kNN and further maintenance, exactly
    like the original.  Exact geometries are not serialisable; collections
    carrying them are refused rather than silently degraded.
    """
    if data.geometries is not None:
        raise DatasetError(
            "collections with exact geometries cannot be persisted "
            "(archives store MBRs only); drop the geometries or persist "
            "the index alone with save_index"
        )
    if len(index) != len(data):
        raise DatasetError(
            f"index covers {len(index)} objects but the dataset has "
            f"{len(data)} rows"
        )
    extra = {
        "data_xl": data.xl,
        "data_yl": data.yl,
        "data_xu": data.xu,
        "data_yu": data.yu,
    }
    if format == "columnar":
        _save_columnar(index, path, extra, if_dirty)
    elif format == "npz":
        _check_clean(index, if_dirty)
        _save_npz(index, path, extra)
    else:
        raise ValueError(
            f"unknown save format {format!r}; expected one of {SAVE_FORMATS}"
        )


# -- loading ---------------------------------------------------------------


def _freeze(*arrays: np.ndarray) -> None:
    """Pin loaded columns: a restored index is an immutable snapshot."""
    for arr in arrays:
        arr.setflags(write=False)


def _freeze_store(store: PackedStore) -> None:
    _freeze(store.offsets, store.xl, store.yl, store.xu, store.yu, store.ids)


def _legacy_tables_from_csr(
    index, views: "dict[str, np.ndarray]", n_classes: int
) -> None:
    """Materialise legacy per-tile tables from mapped CSR sections."""
    offsets = views["offsets"]
    for key in np.flatnonzero(np.diff(offsets)):
        s = int(offsets[key])
        e = int(offsets[key + 1])
        cols = tuple(
            views[name][s:e].copy() for name in ("xl", "yl", "xu", "yu", "ids")
        )
        _freeze(*cols)
        table = TileTable(*cols)
        if n_classes == 4:
            tile_id, code = divmod(int(key), 4)
            tables = index._tiles.get(tile_id)
            if tables is None:
                tables = [None, None, None, None]
                index._tiles[tile_id] = tables
            tables[code] = table
        else:
            index._tiles[int(key)] = table


def _load_columnar(
    path: "str | os.PathLike[str]",
    storage: "str | None",
    timings: "dict | None",
    with_data: bool,
) -> "tuple[TwoLayerGrid | OneLayerGrid, RectDataset | None]":
    t0 = time.perf_counter()
    _version, meta, specs = container.read_header(path)
    meta, views = container.read_container(path)
    t1 = time.perf_counter()

    kind = str(meta.get("kind", ""))
    cls = _KINDS.get(kind)
    if cls is None:
        raise DatasetError(f"{path}: unknown index kind {kind!r}")
    grid = GridPartitioner.from_meta(meta)
    index = cls(grid, storage=storage)
    index._n_objects = int(meta["n_objects"])
    n_classes = _n_classes(index)
    if int(meta["n_classes"]) != n_classes:
        raise DatasetError(
            f"{path}: archive has {meta['n_classes']} classes per tile "
            f"but {kind} expects {n_classes}"
        )
    if index._packed:
        # Pure adoption: the container persisted the CSR offsets and the
        # fused query matrix, so nothing below reads a single slab byte —
        # rows page in on first query.
        index._store = PackedStore.adopt(
            n_classes,
            views["offsets"],
            views["xl"],
            views["yl"],
            views["xu"],
            views["yu"],
            views["ids"],
        )
        index._fast_q = views["fast_q"]
        # _tile_row_bounds stays None; the fast kernels derive it lazily.
        index._mmap_manifest = {
            "kind": "file",
            "path": os.path.abspath(os.fspath(path)),
            "arrays": {
                name: {
                    "offset": spec.offset,
                    "dtype": spec.dtype.str,
                    "shape": list(spec.shape),
                }
                for name, spec in specs.items()
            },
        }
        if isinstance(index, TwoLayerPlusGrid):
            index._g_xl = views["g_xl"]
            index._g_yl = views["g_yl"]
            index._g_xu = views["g_xu"]
            index._g_yu = views["g_yu"]
            if all(name in views for name in _ORDER_SECTIONS):
                index._persisted_orders = tuple(
                    views[name] for name in _ORDER_SECTIONS
                )
    else:
        _legacy_tables_from_csr(index, views, n_classes)
        if isinstance(index, TwoLayerPlusGrid):
            index._g_xl = views["g_xl"].copy()
            index._g_yl = views["g_yl"].copy()
            index._g_xu = views["g_xu"].copy()
            index._g_yu = views["g_yu"].copy()

    data: "RectDataset | None" = None
    if with_data and "data_xl" in views:
        data = RectDataset(
            views["data_xl"],
            views["data_yl"],
            views["data_xu"],
            views["data_yu"],
        )
    if timings is not None:
        timings["read_ms"] = timings.get("read_ms", 0.0) + (t1 - t0) * 1e3
        timings["build_ms"] = (
            timings.get("build_ms", 0.0) + (time.perf_counter() - t1) * 1e3
        )
    return index, data


def _load_npz(
    path: "str | os.PathLike[str]",
    storage: "str | None",
    timings: "dict | None",
) -> "TwoLayerGrid | OneLayerGrid":
    t0 = time.perf_counter()
    try:
        archive_cm = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise DatasetError(f"{path}: not a repro index archive") from exc
    with archive_cm as archive:
        try:
            version = int(archive["version"])
            kind = str(archive["kind"])
            nx = int(archive["nx"])
            ny = int(archive["ny"])
            domain = Rect(*archive["domain"].tolist())
            n_objects = int(archive["n_objects"])
            tile_ids = archive["tile_ids"]
            codes = archive["codes"]
            xl = archive["xl"]
            yl = archive["yl"]
            xu = archive["xu"]
            yu = archive["yu"]
            ids = archive["ids"]
        except KeyError as exc:
            raise DatasetError(f"{path}: not a repro index archive") from exc
    if version != _NPZ_FORMAT_VERSION:
        raise DatasetError(
            f"{path}: unsupported index format version {version}"
        )
    cls = _KINDS.get(kind)
    if cls is None:
        raise DatasetError(f"{path}: unknown index kind {kind!r}")
    t1 = time.perf_counter()

    grid = GridPartitioner(nx, ny, domain)
    index = cls(grid, storage=storage)
    index._n_objects = n_objects

    if issubclass(cls, TwoLayerGrid):
        keys = tile_ids * 4 + codes
        if index._packed:
            # Pre-sorted archives (written from a packed index with an
            # empty delta) are adopted zero-copy by from_rows.
            index._store = PackedStore.from_rows(
                4 * nx * ny, 4, keys, xl, yl, xu, yu,
                ids.astype(np.int64, copy=False),
            )
            _freeze_store(index._store)
        else:
            for key, rows in group_rows(keys):
                tile_id, code = divmod(int(key), 4)
                tables = index._tiles.get(tile_id)
                if tables is None:
                    tables = [None, None, None, None]
                    index._tiles[tile_id] = tables
                cols = (
                    xl[rows].copy(), yl[rows].copy(), xu[rows].copy(),
                    yu[rows].copy(), ids[rows].copy(),
                )
                _freeze(*cols)
                tables[code] = TileTable(*cols)
        if isinstance(index, TwoLayerPlusGrid):
            # Restore the global MBR columns from the class-A replicas
            # (each object has exactly one); decomposed tables rebuild
            # lazily per partition on first use.
            g_xl = np.empty(n_objects)
            g_yl = np.empty(n_objects)
            g_xu = np.empty(n_objects)
            g_yu = np.empty(n_objects)
            a_rows = codes == 0
            g_xl[ids[a_rows]] = xl[a_rows]
            g_yl[ids[a_rows]] = yl[a_rows]
            g_xu[ids[a_rows]] = xu[a_rows]
            g_yu[ids[a_rows]] = yu[a_rows]
            index._g_xl = g_xl
            index._g_yl = g_yl
            index._g_xu = g_xu
            index._g_yu = g_yu
    else:
        if index._packed:
            index._store = PackedStore.from_rows(
                nx * ny, 1, tile_ids, xl, yl, xu, yu,
                ids.astype(np.int64, copy=False),
            )
            _freeze_store(index._store)
        else:
            for tile_id, rows in group_rows(tile_ids):
                cols = (
                    xl[rows].copy(), yl[rows].copy(), xu[rows].copy(),
                    yu[rows].copy(), ids[rows].copy(),
                )
                _freeze(*cols)
                index._tiles[int(tile_id)] = TileTable(*cols)
    if timings is not None:
        timings["read_ms"] = timings.get("read_ms", 0.0) + (t1 - t0) * 1e3
        timings["build_ms"] = (
            timings.get("build_ms", 0.0) + (time.perf_counter() - t1) * 1e3
        )
    return index


def load_index(
    path: "str | os.PathLike[str]",
    storage: "str | None" = None,
    timings: "dict | None" = None,
) -> "TwoLayerGrid | OneLayerGrid":
    """Restore an index previously written by :func:`save_index`.

    The on-disk format is sniffed from the file itself: the columnar
    container maps in place (milliseconds, lazily paged), the legacy npz
    archive decompresses and rebuilds.  ``storage`` picks the backend of
    the restored index (``"packed"`` / ``"legacy"`` / ``"compiled"``;
    ``None`` uses the process default) — archives are layout-agnostic,
    so either backend restores from any archive.

    ``timings``, when given, receives the boot-time split: ``read_ms``
    (container map / npz decompression) and ``build_ms`` (index
    reconstruction) accumulate onto any existing values, so one dict can
    total a multi-file boot.
    """
    if container.is_columnar(path):
        index, _data = _load_columnar(path, storage, timings, with_data=False)
        return index
    return _load_npz(path, storage, timings)


def load_collection(
    path: "str | os.PathLike[str]",
    timings: "dict | None" = None,
) -> "tuple[TwoLayerGrid | OneLayerGrid, RectDataset]":
    """Restore ``(index, dataset)`` from a :func:`save_collection` archive.

    ``timings`` is forwarded to the index load; the dataset-column read
    adds onto its ``read_ms``.
    """
    if container.is_columnar(path):
        index, data = _load_columnar(path, None, timings, with_data=True)
        if data is None:
            raise DatasetError(
                f"{path}: archive has no dataset columns (written by "
                "save_index, not save_collection)"
            )
        if len(data) != len(index):
            raise DatasetError(
                f"{path}: dataset has {len(data)} rows but the index "
                f"covers {len(index)} objects"
            )
        return index, data
    index = _load_npz(path, None, timings)
    t0 = time.perf_counter()
    with np.load(path, allow_pickle=False) as archive:
        try:
            cols = (
                archive["data_xl"].copy(),
                archive["data_yl"].copy(),
                archive["data_xu"].copy(),
                archive["data_yu"].copy(),
            )
        except KeyError as exc:
            raise DatasetError(
                f"{path}: archive has no dataset columns (written by "
                "save_index, not save_collection)"
            ) from exc
    _freeze(*cols)
    data = RectDataset(*cols)
    if len(data) != len(index):
        raise DatasetError(
            f"{path}: dataset has {len(data)} rows but the index covers "
            f"{len(index)} objects"
        )
    if timings is not None:
        timings["read_ms"] = (
            timings.get("read_ms", 0.0) + (time.perf_counter() - t0) * 1e3
        )
    return index, data
