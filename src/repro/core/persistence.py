"""Persistence for built grid indexes (save/load to ``.npz``).

A production library must not force users to re-replicate and re-sort a
static collection on every process start.  This module flattens a built
:class:`OneLayerGrid` / :class:`TwoLayerGrid` / :class:`TwoLayerPlusGrid`
into columnar arrays — one row per stored replica, carrying its tile id
and class code — and restores the storage backend the loading process is
configured for (the archive itself is layout-agnostic).  Under the
packed backend both directions are fast paths: saving emits the CSR
base's columns directly (plus any delta-overlay rows), and loading an
archive whose rows are already in fused-key order adopts the arrays
zero-copy — no argsort, no per-tile regrouping.  2-layer⁺ rebuilds its
decomposed tables lazily per partition on first use, so loading stays
cheap.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.errors import DatasetError
from repro.geometry.mbr import Rect
from repro.grid.base import GridPartitioner
from repro.grid.one_layer import OneLayerGrid
from repro.grid.storage import PackedStore, TileTable, group_rows
from repro.core.two_layer import TwoLayerGrid
from repro.core.two_layer_plus import TwoLayerPlusGrid

__all__ = ["save_index", "load_index", "save_collection", "load_collection"]

_FORMAT_VERSION = 1
_KINDS = {
    "OneLayerGrid": OneLayerGrid,
    "TwoLayerGrid": TwoLayerGrid,
    "TwoLayerPlusGrid": TwoLayerPlusGrid,
}


def _flatten(index) -> dict[str, np.ndarray]:
    tile_ids: list[np.ndarray] = []
    codes: list[np.ndarray] = []
    cols: list[list[np.ndarray]] = [[], [], [], [], []]

    def emit(tile_id: int, code: int, table: TileTable) -> None:
        columns = table.columns()
        n = columns[4].shape[0]
        if n == 0:
            return
        tile_ids.append(np.full(n, tile_id, dtype=np.int64))
        codes.append(np.full(n, code, dtype=np.int64))
        for slot, col in zip(cols, columns):
            slot.append(col)

    n_classes = 4 if isinstance(index, TwoLayerGrid) else 1
    if index._store is not None:
        # Packed fast path: the base's live rows come out in fused-key
        # order, so an archive with an empty delta reloads zero-copy.
        keys, xl, yl, xu, yu, ids = index._store.flat_live_rows()
        if keys.shape[0]:
            tile_ids.append(keys // n_classes)
            codes.append(keys % n_classes)
            for slot, col in zip(cols, (xl, yl, xu, yu, ids)):
                slot.append(col)
    if isinstance(index, TwoLayerGrid):
        for tile_id, tables in index._tiles.items():
            for code, table in enumerate(tables):
                if table is not None:
                    emit(tile_id, code, table)
    else:
        for tile_id, table in index._tiles.items():
            emit(tile_id, 0, table)

    def cat(parts, dtype):
        if not parts:
            return np.empty(0, dtype=dtype)
        return np.concatenate(parts)

    return {
        "tile_ids": cat(tile_ids, np.int64),
        "codes": cat(codes, np.int64),
        "xl": cat(cols[0], np.float64),
        "yl": cat(cols[1], np.float64),
        "xu": cat(cols[2], np.float64),
        "yu": cat(cols[3], np.float64),
        "ids": cat(cols[4], np.int64),
    }


def _save(index, path, extra: "dict[str, np.ndarray] | None") -> None:
    kind = type(index).__name__
    if kind not in _KINDS:
        raise DatasetError(
            f"save_index supports {sorted(_KINDS)}, got {kind}"
        )
    flat = _flatten(index)
    # An explicit file handle keeps the path exact (np.savez would
    # silently append ".npz"), so save(path) / load(path) round-trip.
    with open(path, "wb") as fh:
        np.savez_compressed(
            fh,
            version=np.int64(_FORMAT_VERSION),
            kind=np.array(kind),
            nx=np.int64(index.grid.nx),
            ny=np.int64(index.grid.ny),
            domain=np.asarray(index.grid.domain.as_tuple()),
            n_objects=np.int64(len(index)),
            **flat,
            **(extra or {}),
        )


def save_index(index: "TwoLayerGrid | OneLayerGrid", path: "str | os.PathLike[str]") -> None:
    """Persist a built grid index to ``path`` (npz archive)."""
    _save(index, path, None)


def save_collection(
    index: "TwoLayerGrid | OneLayerGrid", data: RectDataset, path: "str | os.PathLike[str]") -> None:
    """Persist an index *plus its dataset columns* in one archive.

    The dataset rows are stored positionally (including rows whose index
    entries were deleted — ids stay positional), so a loaded collection
    answers every query, including kNN and further maintenance, exactly
    like the original.  Exact geometries are not serialisable to npz;
    collections carrying them are refused rather than silently degraded.
    """
    if data.geometries is not None:
        raise DatasetError(
            "collections with exact geometries cannot be persisted "
            "(npz stores MBRs only); drop the geometries or persist "
            "the index alone with save_index"
        )
    if len(index) != len(data):
        raise DatasetError(
            f"index covers {len(index)} objects but the dataset has "
            f"{len(data)} rows"
        )
    _save(
        index,
        path,
        {
            "data_xl": data.xl,
            "data_yl": data.yl,
            "data_xu": data.xu,
            "data_yu": data.yu,
        },
    )


def load_index(
    path: "str | os.PathLike[str]",
    storage: "str | None" = None,
    timings: "dict | None" = None,
) -> "TwoLayerGrid | OneLayerGrid":
    """Restore an index previously written by :func:`save_index`.

    ``storage`` picks the backend of the restored index (``"packed"`` /
    ``"legacy"``; ``None`` uses the process default, see
    :func:`repro.grid.storage.packed_storage_default`) — archives are
    layout-agnostic, so either backend restores from any archive.

    ``timings``, when given, receives the boot-time split: ``read_ms``
    (npz decompression + column extraction) and ``build_ms`` (index
    reconstruction from the columns) accumulate onto any existing
    values, so one dict can total a multi-file boot.
    """
    t0 = time.perf_counter()
    with np.load(path, allow_pickle=False) as archive:
        try:
            version = int(archive["version"])
            kind = str(archive["kind"])
            nx = int(archive["nx"])
            ny = int(archive["ny"])
            domain = Rect(*archive["domain"].tolist())
            n_objects = int(archive["n_objects"])
            tile_ids = archive["tile_ids"]
            codes = archive["codes"]
            xl = archive["xl"]
            yl = archive["yl"]
            xu = archive["xu"]
            yu = archive["yu"]
            ids = archive["ids"]
        except KeyError as exc:
            raise DatasetError(f"{path}: not a repro index archive") from exc
    if version != _FORMAT_VERSION:
        raise DatasetError(f"{path}: unsupported index format version {version}")
    cls = _KINDS.get(kind)
    if cls is None:
        raise DatasetError(f"{path}: unknown index kind {kind!r}")
    t1 = time.perf_counter()

    grid = GridPartitioner(nx, ny, domain)
    index = cls(grid, storage=storage)
    index._n_objects = n_objects

    if issubclass(cls, TwoLayerGrid):
        keys = tile_ids * 4 + codes
        if index._packed:
            # Pre-sorted archives (written from a packed index with an
            # empty delta) are adopted zero-copy by from_rows.
            index._store = PackedStore.from_rows(
                4 * nx * ny, 4, keys, xl, yl, xu, yu,
                ids.astype(np.int64, copy=False),
            )
        else:
            for key, rows in group_rows(keys):
                tile_id, code = divmod(int(key), 4)
                tables = index._tiles.get(tile_id)
                if tables is None:
                    tables = [None, None, None, None]
                    index._tiles[tile_id] = tables
                tables[code] = TileTable(
                    xl[rows].copy(), yl[rows].copy(), xu[rows].copy(),
                    yu[rows].copy(), ids[rows].copy(),
                )
        if isinstance(index, TwoLayerPlusGrid):
            # Restore the global MBR columns from the class-A replicas
            # (each object has exactly one) and mark every partition
            # stale so decomposed tables rebuild lazily.
            g_xl = np.empty(n_objects)
            g_yl = np.empty(n_objects)
            g_xu = np.empty(n_objects)
            g_yu = np.empty(n_objects)
            a_rows = codes == 0
            g_xl[ids[a_rows]] = xl[a_rows]
            g_yl[ids[a_rows]] = yl[a_rows]
            g_xu[ids[a_rows]] = xu[a_rows]
            g_yu[ids[a_rows]] = yu[a_rows]
            index._g_xl = g_xl
            index._g_yl = g_yl
            index._g_xu = g_xu
            index._g_yu = g_yu
            if index._packed:
                index._stale = {
                    divmod(int(key), 4)
                    for key in np.flatnonzero(index._store.group_counts())
                }
            else:
                index._stale = {
                    (tile_id, code)
                    for tile_id, tables in index._tiles.items()
                    for code, t in enumerate(tables)
                    if t is not None
                }
    else:
        if index._packed:
            index._store = PackedStore.from_rows(
                nx * ny, 1, tile_ids, xl, yl, xu, yu,
                ids.astype(np.int64, copy=False),
            )
        else:
            for tile_id, rows in group_rows(tile_ids):
                index._tiles[int(tile_id)] = TileTable(
                    xl[rows].copy(), yl[rows].copy(), xu[rows].copy(),
                    yu[rows].copy(), ids[rows].copy(),
                )
    if timings is not None:
        timings["read_ms"] = timings.get("read_ms", 0.0) + (t1 - t0) * 1e3
        timings["build_ms"] = (
            timings.get("build_ms", 0.0) + (time.perf_counter() - t1) * 1e3
        )
    return index


def load_collection(
    path: "str | os.PathLike[str]",
    timings: "dict | None" = None,
) -> "tuple[TwoLayerGrid | OneLayerGrid, RectDataset]":
    """Restore ``(index, dataset)`` from a :func:`save_collection` archive.

    ``timings`` is forwarded to :func:`load_index`; the dataset-column
    read adds onto its ``read_ms``.
    """
    index = load_index(path, timings=timings)
    t0 = time.perf_counter()
    with np.load(path, allow_pickle=False) as archive:
        try:
            data = RectDataset(
                archive["data_xl"].copy(),
                archive["data_yl"].copy(),
                archive["data_xu"].copy(),
                archive["data_yu"].copy(),
            )
        except KeyError as exc:
            raise DatasetError(
                f"{path}: archive has no dataset columns (written by "
                "save_index, not save_collection)"
            ) from exc
    if len(data) != len(index):
        raise DatasetError(
            f"{path}: dataset has {len(data)} rows but the index covers "
            f"{len(index)} objects"
        )
    if timings is not None:
        timings["read_ms"] = (
            timings.get("read_ms", 0.0) + (time.perf_counter() - t0) * 1e3
        )
    return index, data
