"""The 2-layer grid index — the paper's primary contribution (Section III).

Each grid tile's (MBR, id) pairs are physically divided into four
secondary partitions by *class* (A/B/C/D, see :mod:`repro.grid.base`).
Window queries then scan, per tile, only the classes that cannot produce
duplicate results (Lemmas 1-2) with only the comparisons that are not
already guaranteed (Lemmas 3-4, Section IV-B) — duplicates are *avoided*,
never generated, so no deduplication step exists at all (Algorithm 1).

Disk queries (Section IV-E) skip classes based on whether the previous
tile per dimension also intersects the disk, report fully-covered tiles
without distance tests, and resolve the residual boundary-arc duplicates
of classes B/D with a constant-time canonical-tile test.

Storage backends
----------------

Two physical layouts sit behind one logical index (``storage=`` or the
``REPRO_PACKED`` environment variable picks one; see
:mod:`repro.grid.storage`):

* **packed** (default) — the bulk-loaded base lives in one CSR
  :class:`~repro.grid.storage.PackedStore` keyed by fused
  ``(tile, class)``; queries run *fused kernels* that decompose the tile
  range into plan-uniform regions (:func:`~repro.core.selection
  .window_regions`) and evaluate each region's class with a single
  offsets walk + one vectorised comparison over the stitched rows — no
  Python-per-tile loop.  Inserts land in a per-tile *delta overlay* of
  :class:`~repro.grid.storage.TileTable` (O(1), Table VI); deletes
  tombstone base rows in place; :meth:`compact` folds both back into a
  fresh base.  Compaction is always explicit — queries never trigger it,
  so published snapshots can share the base by reference.
* **legacy** — everything in the per-tile dict of ``TileTable`` lists,
  scanned tile by tile.  Kept as the parity baseline the property tests
  compare against.

Both backends produce identical result sets and identical
QueryStats/EXPLAIN accounting.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.analysis import sanitize as _sanitize
from repro.datasets.dataset import RectDataset
from repro.datasets.queries import DiskQuery
from repro.errors import IndexStateError
from repro.geometry.mbr import Rect, max_dist_point_rect, min_dist_point_rect
from repro.grid.base import (
    CLASS_A,
    CLASS_B,
    CLASS_C,
    CLASS_D,
    CLASS_NAMES,
    GridPartitioner,
    replicate,
)
from repro.grid import kernels as _kernels
from repro.grid.storage import (
    PackedStore,
    TileTable,
    group_rows,
    ranges_to_rows,
    resolve_storage_mode,
)
from repro.core.selection import ClassPlan, TilePlan, plan_tile, window_regions
from repro.obs.tracing import active as tracing_active, span as trace_span
from repro.stats import QueryStats

__all__ = ["TwoLayerGrid"]

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


# Pure mask helper; every caller owns the QueryStats accounting for the
# rows this mask qualifies, hence the REP004 waiver.
def _window_class_mask(  # repro-lint: disable=REP004
    cp: ClassPlan,
    window: Rect,
    xl: np.ndarray,
    yl: np.ndarray,
    xu: np.ndarray,
    yu: np.ndarray,
) -> "np.ndarray | None":
    """Qualification mask for one class's rows (``None`` = all qualify)."""
    mask: "np.ndarray | None" = None
    if cp.xu_ge:
        mask = xu >= window.xl
    if cp.xl_le:
        m = xl <= window.xu
        mask = m if mask is None else mask & m
    if cp.yu_ge:
        m = yu >= window.yl
        mask = m if mask is None else mask & m
    if cp.yl_le:
        m = yl <= window.yu
        mask = m if mask is None else mask & m
    return mask


class TwoLayerGrid:
    """In-memory regular grid with secondary (class) partitioning."""

    #: how duplicate results are handled: avoided up front (Lemmas 1-2),
    #: never generated.  EXPLAIN uses this to pick its accounting mode.
    dedup_strategy = "avoid"

    def __init__(self, grid: GridPartitioner, storage: "str | None" = None):
        self.grid = grid
        self._packed = resolve_storage_mode(storage)
        #: compiled (numba) kernel tier for the stats-free hot routes;
        #: False whenever numba is missing (silent vectorised fallback).
        self._use_compiled = self._packed and _kernels.resolve_kernel_mode(storage)
        #: the immutable CSR base (packed backend; None until bulk load).
        self._store: "PackedStore | None" = None
        #: tile id -> [table or None] indexed by class code.  The whole
        #: index under the legacy backend; the mutable delta overlay on
        #: top of the packed base otherwise.
        self._tiles: dict[int, list["TileTable | None"]] = {}
        self._n_objects = 0
        #: lazy per-row query matrix + per-tile row extents for the
        #: single-comparison window kernel (packed backend only; rebuilt
        #: on :meth:`compact`, shared by reference across snapshot forks).
        self._fast_q: "np.ndarray | None" = None
        self._tile_row_bounds: "np.ndarray | None" = None

    @property
    def storage(self) -> str:
        """The physical backend: ``"packed"`` or ``"legacy"``."""
        return "packed" if self._packed else "legacy"

    @property
    def kernel_mode(self) -> str:
        """``"compiled"`` (numba tier active) or ``"vectorized"``."""
        return "compiled" if self._use_compiled else "vectorized"

    # -- construction ----------------------------------------------------

    @classmethod
    def build(
        cls,
        data: RectDataset,
        partitions_per_dim: int = 128,
        domain: "Rect | None" = None,
        storage: "str | None" = None,
    ) -> "TwoLayerGrid":
        """Bulk-load from a dataset (square N x N grid, like the paper)."""
        grid = GridPartitioner(
            partitions_per_dim,
            partitions_per_dim,
            domain if domain is not None else Rect(0.0, 0.0, 1.0, 1.0),
        )
        index = cls(grid, storage=storage)
        index._bulk_load(data)
        return index

    def _bulk_load(self, data: RectDataset) -> None:
        rep = replicate(data, self.grid)
        # Fuse tile id and class code into one sort key; group once.
        keys = rep.tile_ids * 4 + rep.class_codes
        if self._packed:
            obj = rep.obj_ids
            self._store = PackedStore.from_rows(
                4 * self.grid.nx * self.grid.ny,
                4,
                keys,
                data.xl[obj],
                data.yl[obj],
                data.xu[obj],
                data.yu[obj],
                obj.astype(np.int64, copy=False),
            )
        else:
            for key, rows in group_rows(keys):
                tile_id, code = divmod(key, 4)
                obj = rep.obj_ids[rows]
                tables = self._tiles.get(tile_id)
                if tables is None:
                    tables = [None, None, None, None]
                    self._tiles[tile_id] = tables
                tables[code] = TileTable(
                    data.xl[obj].copy(),
                    data.yl[obj].copy(),
                    data.xu[obj].copy(),
                    data.yu[obj].copy(),
                    obj.copy(),
                )
        self._n_objects = len(data)

    def insert(self, rect: Rect, obj_id: "int | None" = None) -> int:
        """Insert one object; its class is determined per overlapped tile.

        O(1) per replica under both backends: the packed base is never
        rebuilt — new entries go to the delta overlay until
        :meth:`compact`.
        """
        if obj_id is None:
            obj_id = self._n_objects
        self._n_objects = max(self._n_objects, obj_id + 1)
        ix0 = self.grid.tile_ix(rect.xl)
        ix1 = self.grid.tile_ix(rect.xu)
        iy0 = self.grid.tile_iy(rect.yl)
        iy1 = self.grid.tile_iy(rect.yu)
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                code = 2 * (ix > ix0) + (iy > iy0)
                tables = self._tiles.get(base + ix)
                if tables is None:
                    tables = [None, None, None, None]
                    self._tiles[base + ix] = tables
                table = tables[code]
                if table is None:
                    table = TileTable()
                    tables[code] = table
                table.append(rect.xl, rect.yl, rect.xu, rect.yu, obj_id)
        return obj_id

    def delete(self, rect: Rect, obj_id: int) -> bool:
        """Remove object ``obj_id`` whose MBR is ``rect``; True if found.

        The replica class per tile is recomputed from the MBR, so only
        the exact secondary partitions holding the object are touched.
        Base entries are tombstoned (no rebuild); delta entries are
        filtered out of their overlay tables.
        """
        ix0 = self.grid.tile_ix(rect.xl)
        ix1 = self.grid.tile_ix(rect.xu)
        iy0 = self.grid.tile_iy(rect.yl)
        iy1 = self.grid.tile_iy(rect.yu)
        store = self._store
        removed = 0
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                code = 2 * (ix > ix0) + (iy > iy0)
                tile_id = base + ix
                tables = self._tiles.get(tile_id)
                if tables is not None:
                    table = tables[code]
                    if table is not None:
                        removed += table.delete(obj_id)
                        if len(table) == 0:
                            tables[code] = None
                    if all(t is None for t in tables):
                        del self._tiles[tile_id]
                if store is not None:
                    removed += store.mark_dead(
                        store.find_rows(tile_id * 4 + code, obj_id)
                    )
        return removed > 0

    def compact(self) -> None:
        """Fold the delta overlay and tombstones into a fresh packed base.

        Explicitly invoked only — queries and updates never compact, so a
        published snapshot's base is safe to share across threads.  Until
        compaction, query cost degrades gracefully: delta tiles are
        scanned tile-by-tile exactly like the legacy backend.  No-op for
        the legacy backend (its tables fold lazily on read).
        """
        if not self._packed:
            return
        parts_keys: list[np.ndarray] = []
        parts_cols: list[tuple[np.ndarray, ...]] = []
        if self._store is not None:
            keys, xl, yl, xu, yu, ids = self._store.flat_live_rows()
            parts_keys.append(keys)
            parts_cols.append((xl, yl, xu, yu, ids))
        for tile_id, tables in self._tiles.items():
            for code, table in enumerate(tables):
                if table is None or len(table) == 0:
                    continue
                cols = table.columns()
                parts_keys.append(
                    np.full(cols[4].shape[0], tile_id * 4 + code, dtype=np.int64)
                )
                parts_cols.append(cols)
        if parts_keys:
            keys = np.concatenate(parts_keys)
            cols = [
                np.concatenate([p[c] for p in parts_cols]) for c in range(5)
            ]
        else:
            keys = _EMPTY_IDS
            cols = [_EMPTY_F, _EMPTY_F, _EMPTY_F, _EMPTY_F, _EMPTY_IDS]
        self._store = PackedStore.from_rows(
            4 * self.grid.nx * self.grid.ny, 4, keys, *cols
        )
        self._tiles = {}
        self._fast_q = None
        self._tile_row_bounds = None

    # -- storage accessors -------------------------------------------------

    def _partition_columns(
        self, tile_id: int, code: int
    ) -> "tuple[np.ndarray, ...] | None":
        """Live ``(xl, yl, xu, yu, ids)`` of one secondary partition.

        Merges the packed base group with the delta overlay; ``None``
        when the partition holds no live rows.  Zero-copy (views of the
        base) whenever the partition has no delta and no tombstones.
        """
        base = None
        if self._store is not None:
            base = self._store.group_columns(tile_id * 4 + code)
        delta = None
        tables = self._tiles.get(tile_id)
        if tables is not None:
            table = tables[code]
            if table is not None and len(table):
                delta = table.columns()
        if base is None:
            return delta
        if delta is None:
            return base
        return tuple(np.concatenate([b, d]) for b, d in zip(base, delta))

    def _tile_has_rows(self, tile_id: int) -> bool:
        """Does any secondary partition of the tile hold a live row?"""
        if tile_id in self._tiles:
            return True  # overlay tables are pruned when emptied
        store = self._store
        if store is None:
            return False
        n = int(store.offsets[tile_id * 4 + 4] - store.offsets[tile_id * 4])
        if n and store.n_dead:
            n -= int(store.dead_per_group[tile_id * 4 : tile_id * 4 + 4].sum())
        return n > 0

    def _tile_live_counts(self, tids: np.ndarray) -> np.ndarray:
        """Live rows per tile (all four classes) in the packed base."""
        store = self._store
        tot = store.offsets[tids * 4 + 4] - store.offsets[tids * 4]
        if store.n_dead:
            dpg = store.dead_per_group
            tot = tot - (
                dpg[tids * 4]
                + dpg[tids * 4 + 1]
                + dpg[tids * 4 + 2]
                + dpg[tids * 4 + 3]
            )
        return tot

    def _tile_live_rows(self, tile_id: int) -> int:
        """Live rows in one tile across the base and overlay tables."""
        n = 0
        store = self._store
        if store is not None:
            n = int(store.offsets[tile_id * 4 + 4] - store.offsets[tile_id * 4])
            if n and store.n_dead:
                n -= int(
                    store.dead_per_group[tile_id * 4 : tile_id * 4 + 4].sum()
                )
        tables = self._tiles.get(tile_id)
        if tables is not None:
            n += sum(len(t) for t in tables if t is not None)
        return n

    def _region_tids(self, ax: int, bx: int, ay: int, by: int) -> np.ndarray:
        """Row-major tile ids of one rectangular region of the grid.

        The single tile-enumeration point of every fused kernel — banded
        subclasses (:mod:`repro.shard`) override this to drop tiles
        outside their owned contiguous range, which bands the window,
        within and chunk kernels at once (the per-class offsets walks
        simply never see foreign tiles).
        """
        nx = self.grid.nx
        return (
            np.arange(ay, by + 1, dtype=np.int64)[:, None] * nx
            + np.arange(ax, bx + 1, dtype=np.int64)[None, :]
        ).ravel()

    def _on_window_result(self, window: Rect, out: np.ndarray) -> None:
        """Post-query hook: sampled sanitizer cross-check of a result.

        Banded subclasses override this with a no-op — a band's partial
        result would falsely fail the *global* naive reference, and a
        banded naive scan is not well-defined (replicas whose canonical
        class lives in another band).  The shard router re-checks the
        merged result against a full local index instead.
        """
        if _sanitize.enabled():
            _sanitize.on_window_query(self, window, out)

    def _fork_shell(self) -> "TwoLayerGrid":
        """An empty index shell of the same concrete type over this grid.

        Snapshot forks (:mod:`repro.server.snapshot`) populate the shell
        by reference; subclasses override so forks keep their type (and
        any extra state such as a shard band).
        """
        return type(self)(self.grid, storage=self.storage)

    def _delta_tiles_in_range(
        self, ix0: int, ix1: int, iy0: int, iy1: int
    ) -> list[int]:
        """Sorted overlay tile ids inside a tile range.

        Iterates whichever is smaller — the overlay dict or the range —
        so an empty or tiny overlay costs nothing per query.
        """
        tiles = self._tiles
        if not tiles:
            return []
        nx = self.grid.nx
        if len(tiles) <= (ix1 - ix0 + 1) * (iy1 - iy0 + 1):
            out = [
                tid
                for tid in tiles
                if ix0 <= tid % nx <= ix1 and iy0 <= tid // nx <= iy1
            ]
        else:
            out = [
                base + ix
                for iy in range(iy0, iy1 + 1)
                for base in (iy * nx,)
                for ix in range(ix0, ix1 + 1)
                if base + ix in tiles
            ]
        out.sort()
        return out

    def _class_a_counts(self) -> dict[int, int]:
        """Per-tile live class-A counts (the selectivity histogram)."""
        counts: dict[int, int] = {}
        if self._store is not None:
            a = self._store.group_counts()[0::4]
            for tid in np.flatnonzero(a):
                counts[int(tid)] = int(a[tid])
        for tile_id, tables in self._tiles.items():
            table = tables[CLASS_A]
            if table is not None and len(table):
                counts[tile_id] = counts.get(tile_id, 0) + len(table)
        return counts

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return self._n_objects

    @property
    def replica_count(self) -> int:
        """Total stored entries — identical to the 1-layer grid's by design."""
        total = sum(
            len(t) for tables in self._tiles.values() for t in tables if t is not None
        )
        if self._store is not None:
            total += self._store.n_live
        return total

    @property
    def nbytes(self) -> int:
        total = sum(
            t.nbytes for tables in self._tiles.values() for t in tables if t is not None
        )
        if self._store is not None:
            total += self._store.nbytes
        return total

    @property
    def nonempty_tiles(self) -> int:
        if self._store is None:
            return len(self._tiles)
        counts = self._store.tile_counts()
        n = int(np.count_nonzero(counts))
        n += sum(1 for tile_id in self._tiles if counts[tile_id] == 0)
        return n

    def class_counts(self) -> dict[str, int]:
        """Stored entries per class — A holds exactly one entry per object."""
        names = ("A", "B", "C", "D")
        counts = dict.fromkeys(names, 0)
        if self._store is not None:
            per_code = self._store.group_counts().reshape(-1, 4).sum(axis=0)
            for code in range(4):
                counts[names[code]] += int(per_code[code])
        for tables in self._tiles.values():
            for code, t in enumerate(tables):
                if t is not None:
                    counts[names[code]] += len(t)
        return counts

    def __repr__(self) -> str:
        return (
            f"TwoLayerGrid(grid={self.grid.nx}x{self.grid.ny}, "
            f"objects={self._n_objects}, replicas={self.replica_count})"
        )

    def tile_class_table(self, ix: int, iy: int, code: int) -> "TileTable | None":
        """Raw secondary-partition storage (testing / inspection only).

        Under the packed backend the returned table is a merged
        *read-only view* of base + delta; mutate the index through
        :meth:`insert`/:meth:`delete`, never through this table.
        """
        if not (0 <= ix < self.grid.nx and 0 <= iy < self.grid.ny):
            raise IndexStateError(f"tile ({ix}, {iy}) outside the grid")
        if code not in (CLASS_A, CLASS_B, CLASS_C, CLASS_D):
            raise IndexStateError(f"invalid class code {code}")
        tile_id = self.grid.tile_id(ix, iy)
        if self._store is None:
            tables = self._tiles.get(tile_id)
            return None if tables is None else tables[code]
        cols = self._partition_columns(tile_id, code)
        return None if cols is None else TileTable(*cols)

    def explain_partitions(
        self, window: Rect
    ) -> list[tuple[Rect, np.ndarray]]:
        """EXPLAIN introspection: ``(tile rect, stored ids)`` for every
        non-empty tile a 1-layer scan of ``window`` would touch.

        All four class tables of a tile are pooled — the returned lists
        describe *storage* (where replicas live), not the class-pruned
        query path, which is exactly what the duplicates-avoided and
        replication-factor figures of a :class:`~repro.obs.explain.QueryPlan`
        need.
        """
        if self._n_objects == 0:
            return []
        out: list[tuple[Rect, np.ndarray]] = []
        ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                ids = [
                    cols[4]
                    for code in (CLASS_A, CLASS_B, CLASS_C, CLASS_D)
                    for cols in (self._partition_columns(base + ix, code),)
                    if cols is not None
                ]
                if not ids:
                    continue
                out.append((self.grid.tile_rect(ix, iy), np.concatenate(ids)))
        return out

    # -- window queries ---------------------------------------------------------

    def window_query(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Ids of all indexed MBRs intersecting ``window``.

        Duplicate-free by construction: each result is produced exactly
        once, in the tile where its reporting class survives Lemmas 1-2.
        No deduplication of any kind is performed (Algorithm 1).
        """
        if self._n_objects == 0:
            return _EMPTY_IDS
        if (
            stats is None
            and self._store is not None
            and not self._tiles
            and not self._store.n_dead
            and tracing_active() is None
        ):
            # Hot route: tracing disabled, no accounting requested, and
            # every live row sits in the immutable base — go straight to
            # the single-comparison kernel with the tile range inlined
            # (the span/context plumbing alone costs as much as the
            # kernel at typical selectivities).
            g = self.grid
            d = g.domain
            ix0 = int((window.xl - d.xl) / g.tile_w)
            ix1 = int((window.xu - d.xl) / g.tile_w)
            iy0 = int((window.yl - d.yl) / g.tile_h)
            iy1 = int((window.yu - d.yl) / g.tile_h)
            last = g.nx - 1
            ix0 = 0 if ix0 < 0 else (last if ix0 > last else ix0)
            ix1 = 0 if ix1 < 0 else (last if ix1 > last else ix1)
            last = g.ny - 1
            iy0 = 0 if iy0 < 0 else (last if iy0 > last else iy0)
            iy1 = 0 if iy1 < 0 else (last if iy1 > last else iy1)
            out = self._fused_window_fast(window, ix0, ix1, iy0, iy1)
            self._on_window_result(window, out)
            return out
        with trace_span("query.window"):
            with trace_span("filter.lookup"):
                ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                if self._store is not None:
                    self._fused_window(window, ix0, ix1, iy0, iy1, pieces, stats)
                else:
                    tiles = self._tiles
                    for iy in range(iy0, iy1 + 1):
                        base = iy * self.grid.nx
                        for ix in range(ix0, ix1 + 1):
                            if base + ix not in tiles:
                                continue
                            plan = plan_tile(ix, iy, ix0, ix1, iy0, iy1)
                            self._scan_tile_window(
                                base + ix, window, plan, pieces, stats
                            )
            with trace_span("dedup"):
                pass  # duplicate-free by construction (Lemmas 1-2)
            out = np.concatenate(pieces) if pieces else _EMPTY_IDS
        self._on_window_result(window, out)
        return out

    def _fused_window(
        self,
        window: Rect,
        ix0: int,
        ix1: int,
        iy0: int,
        iy1: int,
        pieces: list[np.ndarray],
        stats: "QueryStats | None" = None,
    ) -> None:
        """Packed-backend window kernel: one pass per (region, class).

        The tile range decomposes into at most 9 plan-uniform regions;
        within a region each scanned class is one offsets walk over the
        CSR base plus one vectorised comparison over the stitched rows —
        the Python cost is O(regions · classes), not O(tiles).  Overlay
        tiles fall back to the per-tile scan.
        """
        if stats is None and not self._tiles and not self._store.n_dead:
            pieces.append(self._fused_window_fast(window, ix0, ix1, iy0, iy1))
            return
        store = self._store
        nx = self.grid.nx
        delta = self._delta_tiles_in_range(ix0, ix1, iy0, iy1)
        delta_arr = np.asarray(delta, dtype=np.int64) if delta else None
        for ax, bx, ay, by, plan in window_regions(ix0, ix1, iy0, iy1):
            tids = self._region_tids(ax, bx, ay, by)
            if delta_arr is not None:
                tids = tids[~np.isin(tids, delta_arr)]
            if tids.shape[0] == 0:
                continue
            if stats is not None:
                tile_tot = self._tile_live_counts(tids)
                stats.partitions_visited += int(np.count_nonzero(tile_tot))
                region_scanned = np.zeros(tids.shape[0], dtype=np.int64)
            for cp in plan.classes:
                keys = tids * 4 + cp.code
                starts = store.offsets[keys]
                ends = store.offsets[keys + 1]
                counts = ends - starts
                if store.n_dead:
                    counts = counts - store.dead_per_group[keys]
                total = int(counts.sum())
                if total == 0:
                    continue
                if stats is not None:
                    stats.rects_scanned += total
                    stats.comparisons += cp.n_comparisons * total
                    region_scanned += counts
                    name = CLASS_NAMES[cp.code]
                    for _ in range(int(np.count_nonzero(counts))):
                        stats.visit_class(name)
                rows = ranges_to_rows(starts, ends)
                if store.n_dead:
                    rows = rows[~store.dead[rows]]
                mask = None
                if cp.xu_ge:
                    mask = store.xu[rows] >= window.xl
                if cp.xl_le:
                    m = store.xl[rows] <= window.xu
                    mask = m if mask is None else mask & m
                if cp.yu_ge:
                    m = store.yu[rows] >= window.yl
                    mask = m if mask is None else mask & m
                if cp.yl_le:
                    m = store.yl[rows] <= window.yu
                    mask = m if mask is None else mask & m
                ids = store.ids[rows]
                pieces.append(ids if mask is None else ids[mask])
            if stats is not None:
                stats.visit_tiles(tids, region_scanned, tile_tot)
        for tile_id in delta:
            plan = plan_tile(tile_id % nx, tile_id // nx, ix0, ix1, iy0, iy1)
            self._scan_tile_window(tile_id, window, plan, pieces, stats)

    def _build_fast_q(self) -> np.ndarray:
        """Materialise the per-row query matrix for the fast kernel.

        Row ``r`` gets six float64 columns ``[xu, -xl, yu, -yl, cx, by]``
        where ``cx`` is ``-tile_ix`` for class C/D rows (``+inf``
        otherwise) and ``by`` is ``-tile_iy`` for class B/D rows.  A
        window query then reduces to one broadcast comparison against
        ``[w.xl, -w.xu, w.yl, -w.yu, -ix0, -iy0]``: the first four
        columns are the intersection test, the last two encode the
        Lemma 1-2 class-scanning rule (a C/D row only counts in the
        window's first column, ``tile_ix == ix0``; a B/D row only in its
        first row) — ``+inf`` rows pass those conditions vacuously.
        """
        store = self._store
        nx = self.grid.nx
        counts = np.diff(store.offsets)
        keys = np.repeat(
            np.arange(store.offsets.shape[0] - 1, dtype=np.int64), counts
        )
        tiles = keys >> 2
        # Condition-major layout: each condition is one contiguous row,
        # so the per-slab reduction is six vectorised passes (reducing
        # the short axis of a row-major matrix would strided-loop).
        q = np.empty((6, store.n_rows), dtype=np.float64)
        q[0] = store.xu
        q[1] = -store.xl
        q[2] = store.yu
        q[3] = -store.yl
        q[4] = np.where(keys & 2, -(tiles % nx), np.inf)
        q[5] = np.where(keys & 1, -(tiles // nx), np.inf)
        self._fast_q = q
        # offsets[4t] per tile (plus the terminal bound): tile t's rows —
        # all four class groups — are the contiguous run
        # [bounds[t], bounds[t+1]).  Kept as a Python list: the kernel
        # reads two scalars per slab, and list indexing returns plain
        # ints at half the cost of NumPy scalar extraction.
        self._tile_row_bounds = store.offsets[::4].tolist()
        return q

    # Intentionally stats-free: window_query only routes here when the
    # caller passed stats=None (the REP004 waiver below is the visible
    # contract; the stats-carrying twin is _fused_window).
    def _fused_window_fast(  # repro-lint: disable=REP004
        self,
        window: Rect,
        ix0: int,
        ix1: int,
        iy0: int,
        iy1: int,
    ) -> np.ndarray:
        """Minimal-overhead window kernel (no stats/delta/tombstones).

        Per grid row the tiles ``ix0..ix1`` occupy one contiguous CSR
        slab (tile ids are consecutive, groups are tile-major), so the
        whole query is one broadcast ``>=`` against the precomputed
        :meth:`_build_fast_q` matrix per slab — class selection and the
        intersection test in a single comparison.  Full four-way
        comparisons are applied to every scanned row; the ones §IV-B
        proves redundant are tautologies there, so the result set is
        identical (the stats-carrying kernel keeps the exact per-class
        comparison accounting).
        """
        q = self._fast_q
        if q is None:
            q = self._build_fast_q()
        if self._use_compiled:
            return _kernels.window_scan(
                q,
                self._store.ids,
                self._store.offsets,
                4,
                self.grid.nx,
                ix0,
                iy0,
                iy1,
                ix1 - ix0 + 1,
                np.array(
                    [window.xl, -window.xu, window.yl, -window.yu,
                     float(-ix0), float(-iy0)]
                ),
            )
        tb = self._tile_row_bounds
        if tb is None:
            # A memmap-loaded index ships its query matrix but derives
            # the scalar row extents lazily (keeps load from paging the
            # offsets slab in before the first query).
            tb = self._tile_row_bounds = self._store.offsets[::4].tolist()
        ids = self._store.ids
        ge = np.greater_equal
        band = np.logical_and.reduce
        bounds = np.array(
            [window.xl, -window.xu, window.yl, -window.yu,
             float(-ix0), float(-iy0)]
        ).reshape(6, 1)
        lo = iy0 * self.grid.nx + ix0
        width = ix1 - ix0 + 1
        pieces: list[np.ndarray] = []
        for _ in range(iy0, iy1 + 1):
            s0 = tb[lo]
            s1 = tb[lo + width]
            lo += self.grid.nx
            if s0 == s1:
                continue
            keep = band(ge(q[:, s0:s1], bounds), axis=0)
            pieces.append(ids[s0:s1][keep])
        if not pieces:
            return _EMPTY_IDS
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces)

    def _scan_tile_window(
        self,
        tile_id: int,
        window: Rect,
        plan: TilePlan,
        pieces: list[np.ndarray],
        stats: "QueryStats | None" = None,
    ) -> None:
        """Scan one tile's relevant secondary partitions for one window.

        Appends the qualifying id arrays to ``pieces``.  Shared by the
        per-tile paths (legacy backend, overlay tiles) and the
        tiles-based batch evaluator (:mod:`repro.core.batch`), whose
        subtasks are exactly calls of this method.
        """
        if self._store is None:
            if tile_id not in self._tiles:
                return
            if stats is not None:
                stats.partitions_visited += 1
        elif stats is not None:
            if not self._tile_has_rows(tile_id):
                return
            stats.partitions_visited += 1
        scanned = 0
        for cp in plan.classes:
            cols = self._partition_columns(tile_id, cp.code)
            if cols is None:
                continue
            xl, yl, xu, yu, ids = cols
            if ids.shape[0] == 0:
                continue
            if stats is not None:
                stats.rects_scanned += ids.shape[0]
                stats.comparisons += cp.n_comparisons * ids.shape[0]
                stats.visit_class(CLASS_NAMES[cp.code])
                scanned += ids.shape[0]
            mask = _window_class_mask(cp, window, xl, yl, xu, yu)
            pieces.append(ids if mask is None else ids[mask])
        if stats is not None:
            stats.visit_tile(tile_id, scanned, self._tile_live_rows(tile_id))

    def _window_chunks(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> Iterator[
        tuple[TilePlan, ClassPlan, tuple[np.ndarray, ...], "np.ndarray | None", np.ndarray]
    ]:
        """Yield candidate chunks of a window query.

        Each item is ``(tile_plan, class_plan, columns, mask, ids)`` where
        ``mask`` is the boolean qualification mask over the chunk
        (``None`` means *all* rectangles qualify — the covered case).
        Under the packed backend a chunk is a whole (region, class) of the
        fused kernel; under the legacy backend one (tile, class).  The
        refinement machinery consumes the full tuples; plain filtering
        only uses ``mask``/``ids``.
        """
        if self._n_objects == 0:
            return
        ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
        store = self._store
        if store is None:
            tiles = self._tiles
            for iy in range(iy0, iy1 + 1):
                base = iy * self.grid.nx
                for ix in range(ix0, ix1 + 1):
                    if base + ix not in tiles:
                        continue
                    plan = plan_tile(ix, iy, ix0, ix1, iy0, iy1)
                    yield from self._tile_chunks(base + ix, window, plan, stats)
            return
        nx = self.grid.nx
        delta = self._delta_tiles_in_range(ix0, ix1, iy0, iy1)
        delta_arr = np.asarray(delta, dtype=np.int64) if delta else None
        for ax, bx, ay, by, plan in window_regions(ix0, ix1, iy0, iy1):
            tids = self._region_tids(ax, bx, ay, by)
            if delta_arr is not None:
                tids = tids[~np.isin(tids, delta_arr)]
            if tids.shape[0] == 0:
                continue
            if stats is not None:
                tile_tot = self._tile_live_counts(tids)
                stats.partitions_visited += int(np.count_nonzero(tile_tot))
            for cp in plan.classes:
                keys = tids * 4 + cp.code
                counts = store.live_counts_for(keys)
                total = int(counts.sum())
                if total == 0:
                    continue
                if stats is not None:
                    stats.rects_scanned += total
                    stats.comparisons += cp.n_comparisons * total
                    name = CLASS_NAMES[cp.code]
                    for _ in range(int(np.count_nonzero(counts))):
                        stats.visit_class(name)
                rows = store.gather(keys)
                cols = (
                    store.xl[rows],
                    store.yl[rows],
                    store.xu[rows],
                    store.yu[rows],
                    store.ids[rows],
                )
                mask = _window_class_mask(cp, window, *cols[:4])
                yield plan, cp, cols, mask, cols[4]
        for tile_id in delta:
            plan = plan_tile(tile_id % nx, tile_id // nx, ix0, ix1, iy0, iy1)
            yield from self._tile_chunks(tile_id, window, plan, stats)

    def _tile_chunks(
        self,
        tile_id: int,
        window: Rect,
        plan: TilePlan,
        stats: "QueryStats | None" = None,
    ) -> Iterator[
        tuple[TilePlan, ClassPlan, tuple[np.ndarray, ...], "np.ndarray | None", np.ndarray]
    ]:
        """Per-tile chunk generator behind :meth:`_window_chunks`."""
        if stats is not None:
            if self._store is not None and not self._tile_has_rows(tile_id):
                return
            stats.partitions_visited += 1
        for cp in plan.classes:
            cols = self._partition_columns(tile_id, cp.code)
            if cols is None:
                continue
            xl, yl, xu, yu, ids = cols
            if ids.shape[0] == 0:
                continue
            if stats is not None:
                stats.rects_scanned += ids.shape[0]
                stats.comparisons += cp.n_comparisons * ids.shape[0]
                stats.visit_class(CLASS_NAMES[cp.code])
            mask = _window_class_mask(cp, window, xl, yl, xu, yu)
            yield plan, cp, cols, mask, ids

    def window_query_within(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Ids of all MBRs **fully contained** in ``window`` (a "within"
        predicate, the other standard range semantics).

        Duplicate avoidance is even cheaper than for intersection: an
        object inside ``W`` has its start point inside ``W``, so its
        (unique) class-A replica lives in a tile of the query range —
        scanning *only* class A everywhere yields each candidate exactly
        once.  Comparisons: the start-side tests are automatic except in
        the query's first tile per dimension; the end-side tests are
        always required (an object may leave its start tile).
        """
        if self._n_objects == 0:
            return _EMPTY_IDS
        with trace_span("query.window"):
            with trace_span("filter.lookup"):
                ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                if self._store is not None:
                    self._fused_within(window, ix0, ix1, iy0, iy1, pieces, stats)
                else:
                    for iy in range(iy0, iy1 + 1):
                        base = iy * self.grid.nx
                        for ix in range(ix0, ix1 + 1):
                            self._scan_tile_within(
                                base + ix,
                                window,
                                ix == ix0,
                                iy == iy0,
                                pieces,
                                stats,
                            )
            with trace_span("dedup"):
                pass  # class A only — each object appears once
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def _fused_within(
        self,
        window: Rect,
        ix0: int,
        ix1: int,
        iy0: int,
        iy1: int,
        pieces: list[np.ndarray],
        stats: "QueryStats | None" = None,
    ) -> None:
        """Packed-backend "within" kernel: class A per plan-uniform region."""
        store = self._store
        nx = self.grid.nx
        delta = self._delta_tiles_in_range(ix0, ix1, iy0, iy1)
        delta_arr = np.asarray(delta, dtype=np.int64) if delta else None
        for ax, bx, ay, by, plan in window_regions(ix0, ix1, iy0, iy1):
            tids = self._region_tids(ax, bx, ay, by)
            if delta_arr is not None:
                tids = tids[~np.isin(tids, delta_arr)]
            if tids.shape[0] == 0:
                continue
            keys = tids * 4  # class A groups
            counts = store.live_counts_for(keys)
            total = int(counts.sum())
            if total == 0:
                continue
            n_comparisons = 2 + int(plan.at_x0) + int(plan.at_y0)
            if stats is not None:
                stats.partitions_visited += int(np.count_nonzero(counts))
                stats.rects_scanned += total
                stats.comparisons += n_comparisons * total
                for _ in range(int(np.count_nonzero(counts))):
                    stats.visit_class("A")
                stats.visit_tiles(tids, counts, self._tile_live_counts(tids))
            rows = store.gather(keys)
            mask = (store.xu[rows] <= window.xu) & (store.yu[rows] <= window.yu)
            if plan.at_x0:
                mask &= store.xl[rows] >= window.xl
            if plan.at_y0:
                mask &= store.yl[rows] >= window.yl
            pieces.append(store.ids[rows][mask])
        for tile_id in delta:
            self._scan_tile_within(
                tile_id,
                window,
                tile_id % nx == ix0,
                tile_id // nx == iy0,
                pieces,
                stats,
            )

    def _scan_tile_within(
        self,
        tile_id: int,
        window: Rect,
        at_x0: bool,
        at_y0: bool,
        pieces: list[np.ndarray],
        stats: "QueryStats | None" = None,
    ) -> None:
        """Per-tile class-A scan for the "within" predicate."""
        cols = self._partition_columns(tile_id, CLASS_A)
        if cols is None:
            return
        xl, yl, xu, yu, ids = cols
        if ids.shape[0] == 0:
            return
        if stats is not None:
            stats.partitions_visited += 1
            stats.rects_scanned += ids.shape[0]
            stats.visit_class("A")
            stats.visit_tile(
                tile_id, ids.shape[0], self._tile_live_rows(tile_id)
            )
        mask = (xu <= window.xu) & (yu <= window.yu)
        n_comparisons = 2
        if at_x0:
            mask &= xl >= window.xl
            n_comparisons += 1
        if at_y0:
            mask &= yl >= window.yl
            n_comparisons += 1
        if stats is not None:
            stats.comparisons += n_comparisons * ids.shape[0]
        pieces.append(ids[mask])

    def count_window(self, window: Rect) -> int:
        """Number of results of a window query (no id materialisation)."""
        if (
            self._use_compiled
            and self._store is not None
            and not self._tiles
            and not self._store.n_dead
            and tracing_active() is None
            and self._n_objects
        ):
            ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
            q = self._fast_q
            if q is None:
                q = self._build_fast_q()
            return int(
                _kernels.window_count(
                    q,
                    self._store.offsets,
                    4,
                    self.grid.nx,
                    ix0,
                    iy0,
                    iy1,
                    ix1 - ix0 + 1,
                    np.array(
                        [window.xl, -window.xu, window.yl, -window.yu,
                         float(-ix0), float(-iy0)]
                    ),
                )
            )
        total = 0
        for _plan, _cp, _cols, mask, ids in self._window_chunks(window):
            total += ids.shape[0] if mask is None else int(np.count_nonzero(mask))
        return total

    # -- disk queries -------------------------------------------------------------

    def disk_query(
        self, query: DiskQuery, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Ids of all indexed MBRs whose distance to the centre is <= radius.

        Section IV-E: only tiles intersecting the disk are visited; a class
        is skipped when the previous tile in its "starts before" dimension
        also intersects the disk (the result would be a duplicate of that
        tile's).  Tiles fully covered by the disk are reported without
        distance computations.  Classes B and D additionally pass a
        canonical-tile test that removes the duplicates arising along the
        disk's boundary arc (the paper's diagonal rule; see Fig. 5).
        """
        if self._n_objects == 0:
            return _EMPTY_IDS
        if (
            stats is None
            and self._use_compiled
            and self._store is not None
            and not self._tiles
            and not self._store.n_dead
            and tracing_active() is None
        ):
            # Compiled §IV-E scan: planning (disk spans), class skipping,
            # covered-tile shortcut, distance tests and the canonical
            # B/D dedup all run in one jitted pass over the CSR slabs.
            g = self.grid
            ix0, ix1, iy0, iy1 = g.tile_range_for_window(query.mbr())
            store = self._store
            return _kernels.disk_scan(
                store.offsets,
                store.xl,
                store.yl,
                store.xu,
                store.yu,
                store.ids,
                g.nx,
                g.ny,
                g.domain.xl,
                g.domain.yl,
                g.tile_w,
                g.tile_h,
                ix0,
                ix1,
                iy0,
                iy1,
                query.cx,
                query.cy,
                query.radius,
            )
        with trace_span("query.disk"):
            with trace_span("filter.lookup"):
                row_span, tile_jobs = self._disk_plan(query)
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                if self._store is not None:
                    self._fused_disk(query, row_span, tile_jobs, pieces, stats)
                else:
                    tiles = self._tiles
                    for tile_id, codes, covered, iy in tile_jobs:
                        if tile_id not in tiles:
                            continue
                        self._scan_tile_disk(
                            tile_id, query, codes, covered, iy, row_span, pieces, stats
                        )
            with trace_span("dedup"):
                pass  # residual B/D duplicates removed in-scan (canonical tile)
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def _disk_plan(
        self, query: DiskQuery
    ) -> tuple[
        dict[int, tuple[int, int]],
        list[tuple[int, tuple[int, ...], bool, int]],
    ]:
        """The §IV-E evaluation plan for one disk query.

        Returns the per-row contiguous tile spans (disk convexity) and a
        flat job list ``(tile_id, scanned class codes, fully_covered,
        row)`` — everything a per-tile scan needs, so the tiles-based
        batch evaluator (:mod:`repro.core.batch`) can group jobs by tile.
        """
        window = query.mbr()
        ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
        radius = query.radius
        cx, cy = query.cx, query.cy

        row_span: dict[int, tuple[int, int]] = {}
        for iy in range(iy0, iy1 + 1):
            lo = None
            hi = None
            for ix in range(ix0, ix1 + 1):
                if min_dist_point_rect(cx, cy, self.grid.tile_rect(ix, iy)) <= radius:
                    if lo is None:
                        lo = ix
                    hi = ix
            if lo is not None:
                row_span[iy] = (lo, hi)  # type: ignore[assignment]

        jobs: list[tuple[int, tuple[int, ...], bool, int]] = []
        for iy, (lx, rx) in row_span.items():
            base = iy * self.grid.nx
            prev_row = row_span.get(iy - 1)
            for ix in range(lx, rx + 1):
                prev_x_in = ix > lx
                prev_y_in = prev_row is not None and prev_row[0] <= ix <= prev_row[1]
                codes = [CLASS_A]
                if not prev_y_in:
                    codes.append(CLASS_B)
                if not prev_x_in:
                    codes.append(CLASS_C)
                if not prev_x_in and not prev_y_in:
                    codes.append(CLASS_D)
                covered = (
                    max_dist_point_rect(cx, cy, self.grid.tile_rect(ix, iy)) <= radius
                )
                jobs.append((base + ix, tuple(codes), covered, iy))
        return row_span, jobs

    def _fused_disk(
        self,
        query: DiskQuery,
        row_span: dict[int, tuple[int, int]],
        tile_jobs: list[tuple[int, tuple[int, ...], bool, int]],
        pieces: list[np.ndarray],
        stats: "QueryStats | None" = None,
    ) -> None:
        """Packed-backend disk kernel: jobs batched by (class, coverage).

        All tiles scanning the same class with the same coverage status
        are gathered and distance-tested in one vectorised pass; the
        canonical-tile test for classes B/D runs on the stitched rows
        with per-row tile-row indices.  Overlay tiles fall back to the
        per-tile scan.
        """
        store = self._store
        radius = query.radius
        cx, cy = query.cx, query.cy
        fused_jobs = []
        delta_jobs = []
        for job in tile_jobs:
            (delta_jobs if job[0] in self._tiles else fused_jobs).append(job)
        if fused_jobs:
            if stats is not None:
                tids_all = np.asarray([j[0] for j in fused_jobs], dtype=np.int64)
                tile_tot = self._tile_live_counts(tids_all)
                stats.partitions_visited += int(np.count_nonzero(tile_tot))
                tid_pos = {int(t): i for i, t in enumerate(tids_all)}
                scanned_all = np.zeros(tids_all.shape[0], dtype=np.int64)
            for code in (CLASS_A, CLASS_B, CLASS_C, CLASS_D):
                for want_covered in (False, True):
                    batch = [
                        j
                        for j in fused_jobs
                        if j[2] is want_covered and code in j[1]
                    ]
                    if not batch:
                        continue
                    tids = np.asarray([j[0] for j in batch], dtype=np.int64)
                    keys = tids * 4 + code
                    counts = store.live_counts_for(keys)
                    total = int(counts.sum())
                    if total == 0:
                        continue
                    if stats is not None:
                        stats.rects_scanned += total
                        scanned_all[
                            np.fromiter(
                                (tid_pos[int(t)] for t in tids),
                                dtype=np.int64,
                                count=tids.shape[0],
                            )
                        ] += counts
                        name = CLASS_NAMES[code]
                        for _ in range(int(np.count_nonzero(counts))):
                            stats.visit_class(name)
                    rows = store.gather(keys)
                    if want_covered:
                        qual = np.ones(total, dtype=bool)
                    else:
                        dx = np.maximum(
                            np.maximum(store.xl[rows] - cx, 0.0),
                            cx - store.xu[rows],
                        )
                        dy = np.maximum(
                            np.maximum(store.yl[rows] - cy, 0.0),
                            cy - store.yu[rows],
                        )
                        qual = dx * dx + dy * dy <= radius * radius
                        if stats is not None:
                            stats.comparisons += 2 * total
                    if code in (CLASS_B, CLASS_D):
                        iys = np.repeat(
                            np.asarray([j[3] for j in batch], dtype=np.int64),
                            counts,
                        )
                        qual &= self._canonical_keep_rows(
                            store.xl[rows],
                            store.yl[rows],
                            store.xu[rows],
                            iys,
                            row_span,
                            stats,
                        )
                    pieces.append(store.ids[rows][qual])
            if stats is not None:
                stats.visit_tiles(tids_all, scanned_all, tile_tot)
        for tile_id, codes, covered, iy in delta_jobs:
            self._scan_tile_disk(
                tile_id, query, codes, covered, iy, row_span, pieces, stats
            )

    def _scan_tile_disk(
        self,
        tile_id: int,
        query: DiskQuery,
        codes: tuple[int, ...],
        covered: bool,
        iy: int,
        row_span: dict[int, tuple[int, int]],
        pieces: list[np.ndarray],
        stats: "QueryStats | None" = None,
    ) -> None:
        """Scan one tile's relevant classes for one disk query."""
        radius = query.radius
        cx, cy = query.cx, query.cy
        if self._store is None:
            if tile_id not in self._tiles:
                return
            if stats is not None:
                stats.partitions_visited += 1
        elif stats is not None:
            if not self._tile_has_rows(tile_id):
                return
            stats.partitions_visited += 1
        scanned = 0
        for code in codes:
            cols = self._partition_columns(tile_id, code)
            if cols is None:
                continue
            xl, yl, xu, yu, ids = cols
            if ids.shape[0] == 0:
                continue
            if stats is not None:
                stats.rects_scanned += ids.shape[0]
                stats.visit_class(CLASS_NAMES[code])
                scanned += ids.shape[0]
            if covered:
                qual = np.ones(ids.shape[0], dtype=bool)
            else:
                dx = np.maximum(np.maximum(xl - cx, 0.0), cx - xu)
                dy = np.maximum(np.maximum(yl - cy, 0.0), cy - yu)
                qual = dx * dx + dy * dy <= radius * radius
                if stats is not None:
                    stats.comparisons += 2 * ids.shape[0]
            if code in (CLASS_B, CLASS_D):
                qual &= self._canonical_keep(xl, yl, xu, iy, row_span, stats)
            pieces.append(ids[qual])
        if stats is not None:
            stats.visit_tile(tile_id, scanned, self._tile_live_rows(tile_id))

    def _canonical_keep(
        self,
        xl: np.ndarray,
        yl: np.ndarray,
        xu: np.ndarray,
        iy: int,
        row_span: dict[int, tuple[int, int]],
        stats: "QueryStats | None",
    ) -> np.ndarray:
        """Keep mask for class-B/D rectangles of one tile (scalar row)."""
        iys = np.full(xl.shape[0], iy, dtype=np.int64)
        return self._canonical_keep_rows(xl, yl, xu, iys, row_span, stats)

    def _canonical_keep_rows(
        self,
        xl: np.ndarray,
        yl: np.ndarray,
        xu: np.ndarray,
        iys: np.ndarray,
        row_span: dict[int, tuple[int, int]],
        stats: "QueryStats | None",
    ) -> np.ndarray:
        """Keep mask for class-B/D rectangles: is this their canonical tile?

        A rectangle's canonical reporting tile is the first tile (in
        row-major order) among the disk-intersecting tiles its MBR covers.
        Class-B/D rectangles start above their scan row (``iys[k]``), so
        the test scans the rows between the rectangle's start row and the
        scan row for an overlap with the rectangle's column span; any
        overlap means the rectangle was already reported there.
        """
        n = xl.shape[0]
        keep = np.ones(n, dtype=bool)
        start_rows = self.grid.tile_iy_array(yl)
        start_cols = self.grid.tile_ix_array(xl)
        end_cols = self.grid.tile_ix_array(xu)
        for k in range(n):
            for j in range(int(start_rows[k]), int(iys[k])):
                span = row_span.get(j)
                if span is None:
                    continue
                if max(int(start_cols[k]), span[0]) <= min(int(end_cols[k]), span[1]):
                    keep[k] = False
                    break
            if stats is not None:
                stats.dedup_checks += 1
        return keep
