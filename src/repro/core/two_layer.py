"""The 2-layer grid index — the paper's primary contribution (Section III).

Each grid tile's (MBR, id) pairs are physically divided into four
secondary partitions by *class* (A/B/C/D, see :mod:`repro.grid.base`).
Window queries then scan, per tile, only the classes that cannot produce
duplicate results (Lemmas 1-2) with only the comparisons that are not
already guaranteed (Lemmas 3-4, Section IV-B) — duplicates are *avoided*,
never generated, so no deduplication step exists at all (Algorithm 1).

Disk queries (Section IV-E) skip classes based on whether the previous
tile per dimension also intersects the disk, report fully-covered tiles
without distance tests, and resolve the residual boundary-arc duplicates
of classes B/D with a constant-time canonical-tile test.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.datasets.queries import DiskQuery
from repro.errors import IndexStateError
from repro.geometry.mbr import Rect, max_dist_point_rect, min_dist_point_rect
from repro.grid.base import (
    CLASS_A,
    CLASS_B,
    CLASS_C,
    CLASS_D,
    CLASS_NAMES,
    GridPartitioner,
    replicate,
)
from repro.grid.storage import TileTable, group_rows
from repro.core.selection import ClassPlan, TilePlan, plan_tile
from repro.obs.tracing import span as trace_span
from repro.stats import QueryStats

__all__ = ["TwoLayerGrid"]

_EMPTY_IDS = np.empty(0, dtype=np.int64)


class TwoLayerGrid:
    """In-memory regular grid with secondary (class) partitioning."""

    #: how duplicate results are handled: avoided up front (Lemmas 1-2),
    #: never generated.  EXPLAIN uses this to pick its accounting mode.
    dedup_strategy = "avoid"

    def __init__(self, grid: GridPartitioner):
        self.grid = grid
        # tile id -> [table or None] indexed by class code.
        self._tiles: dict[int, list["TileTable | None"]] = {}
        self._n_objects = 0

    # -- construction ----------------------------------------------------

    @classmethod
    def build(
        cls,
        data: RectDataset,
        partitions_per_dim: int = 128,
        domain: "Rect | None" = None,
    ) -> "TwoLayerGrid":
        """Bulk-load from a dataset (square N x N grid, like the paper)."""
        grid = GridPartitioner(
            partitions_per_dim,
            partitions_per_dim,
            domain if domain is not None else Rect(0.0, 0.0, 1.0, 1.0),
        )
        index = cls(grid)
        index._bulk_load(data)
        return index

    def _bulk_load(self, data: RectDataset) -> None:
        rep = replicate(data, self.grid)
        # Fuse tile id and class code into one sort key; group once.
        keys = rep.tile_ids * 4 + rep.class_codes
        for key, rows in group_rows(keys):
            tile_id, code = divmod(key, 4)
            obj = rep.obj_ids[rows]
            tables = self._tiles.get(tile_id)
            if tables is None:
                tables = [None, None, None, None]
                self._tiles[tile_id] = tables
            tables[code] = TileTable(
                data.xl[obj].copy(),
                data.yl[obj].copy(),
                data.xu[obj].copy(),
                data.yu[obj].copy(),
                obj.copy(),
            )
        self._n_objects = len(data)

    def insert(self, rect: Rect, obj_id: "int | None" = None) -> int:
        """Insert one object; its class is determined per overlapped tile."""
        if obj_id is None:
            obj_id = self._n_objects
        self._n_objects = max(self._n_objects, obj_id + 1)
        ix0 = self.grid.tile_ix(rect.xl)
        ix1 = self.grid.tile_ix(rect.xu)
        iy0 = self.grid.tile_iy(rect.yl)
        iy1 = self.grid.tile_iy(rect.yu)
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                code = 2 * (ix > ix0) + (iy > iy0)
                tables = self._tiles.get(base + ix)
                if tables is None:
                    tables = [None, None, None, None]
                    self._tiles[base + ix] = tables
                table = tables[code]
                if table is None:
                    table = TileTable()
                    tables[code] = table
                table.append(rect.xl, rect.yl, rect.xu, rect.yu, obj_id)
        return obj_id

    def delete(self, rect: Rect, obj_id: int) -> bool:
        """Remove object ``obj_id`` whose MBR is ``rect``; True if found.

        The replica class per tile is recomputed from the MBR, so only
        the exact secondary partitions holding the object are touched.
        """
        ix0 = self.grid.tile_ix(rect.xl)
        ix1 = self.grid.tile_ix(rect.xu)
        iy0 = self.grid.tile_iy(rect.yl)
        iy1 = self.grid.tile_iy(rect.yu)
        removed = 0
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                tables = self._tiles.get(base + ix)
                if tables is None:
                    continue
                code = 2 * (ix > ix0) + (iy > iy0)
                table = tables[code]
                if table is not None:
                    removed += table.delete(obj_id)
                    if len(table) == 0:
                        tables[code] = None
                if all(t is None for t in tables):
                    del self._tiles[base + ix]
        return removed > 0

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return self._n_objects

    @property
    def replica_count(self) -> int:
        """Total stored entries — identical to the 1-layer grid's by design."""
        return sum(
            len(t) for tables in self._tiles.values() for t in tables if t is not None
        )

    @property
    def nbytes(self) -> int:
        return sum(
            t.nbytes for tables in self._tiles.values() for t in tables if t is not None
        )

    @property
    def nonempty_tiles(self) -> int:
        return len(self._tiles)

    def class_counts(self) -> dict[str, int]:
        """Stored entries per class — A holds exactly one entry per object."""
        names = ("A", "B", "C", "D")
        counts = dict.fromkeys(names, 0)
        for tables in self._tiles.values():
            for code, t in enumerate(tables):
                if t is not None:
                    counts[names[code]] += len(t)
        return counts

    def __repr__(self) -> str:
        return (
            f"TwoLayerGrid(grid={self.grid.nx}x{self.grid.ny}, "
            f"objects={self._n_objects}, replicas={self.replica_count})"
        )

    def tile_class_table(self, ix: int, iy: int, code: int) -> "TileTable | None":
        """Raw secondary-partition storage (testing / inspection only)."""
        if not (0 <= ix < self.grid.nx and 0 <= iy < self.grid.ny):
            raise IndexStateError(f"tile ({ix}, {iy}) outside the grid")
        if code not in (CLASS_A, CLASS_B, CLASS_C, CLASS_D):
            raise IndexStateError(f"invalid class code {code}")
        tables = self._tiles.get(self.grid.tile_id(ix, iy))
        return None if tables is None else tables[code]

    def explain_partitions(
        self, window: Rect
    ) -> list[tuple[Rect, np.ndarray]]:
        """EXPLAIN introspection: ``(tile rect, stored ids)`` for every
        non-empty tile a 1-layer scan of ``window`` would touch.

        All four class tables of a tile are pooled — the returned lists
        describe *storage* (where replicas live), not the class-pruned
        query path, which is exactly what the duplicates-avoided and
        replication-factor figures of a :class:`~repro.obs.explain.QueryPlan`
        need.
        """
        if self._n_objects == 0:
            return []
        out: list[tuple[Rect, np.ndarray]] = []
        ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                tables = self._tiles.get(base + ix)
                if tables is None:
                    continue
                ids = [t.columns()[4] for t in tables if t is not None]
                ids = [a for a in ids if a.shape[0]]
                if not ids:
                    continue
                out.append((self.grid.tile_rect(ix, iy), np.concatenate(ids)))
        return out

    # -- window queries ---------------------------------------------------------

    def window_query(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Ids of all indexed MBRs intersecting ``window``.

        Duplicate-free by construction: each result is produced exactly
        once, in the tile where its reporting class survives Lemmas 1-2.
        No deduplication of any kind is performed (Algorithm 1).
        """
        if self._n_objects == 0:
            return _EMPTY_IDS
        with trace_span("query.window"):
            with trace_span("filter.lookup"):
                ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                for iy in range(iy0, iy1 + 1):
                    base = iy * self.grid.nx
                    for ix in range(ix0, ix1 + 1):
                        tables = self._tiles.get(base + ix)
                        if tables is None:
                            continue
                        plan = plan_tile(ix, iy, ix0, ix1, iy0, iy1)
                        self._scan_tile_window(tables, window, plan, pieces, stats)
            with trace_span("dedup"):
                pass  # duplicate-free by construction (Lemmas 1-2)
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def _scan_tile_window(
        self,
        tables: list["TileTable | None"],
        window: Rect,
        plan: TilePlan,
        pieces: list[np.ndarray],
        stats: "QueryStats | None" = None,
    ) -> None:
        """Scan one tile's relevant secondary partitions for one window.

        Appends the qualifying id arrays to ``pieces``.  Shared by
        :meth:`window_query` and the tiles-based batch evaluator
        (:mod:`repro.core.batch`), whose subtasks are exactly calls of
        this method.
        """
        if stats is not None:
            stats.partitions_visited += 1
        for cp in plan.classes:
            table = tables[cp.code]
            if table is None:
                continue
            xl, yl, xu, yu, ids = table.columns()
            if ids.shape[0] == 0:
                continue
            if stats is not None:
                stats.rects_scanned += ids.shape[0]
                stats.comparisons += cp.n_comparisons * ids.shape[0]
                stats.visit_class(CLASS_NAMES[cp.code])
            mask: "np.ndarray | None" = None
            if cp.xu_ge:
                mask = xu >= window.xl
            if cp.xl_le:
                m = xl <= window.xu
                mask = m if mask is None else mask & m
            if cp.yu_ge:
                m = yu >= window.yl
                mask = m if mask is None else mask & m
            if cp.yl_le:
                m = yl <= window.yu
                mask = m if mask is None else mask & m
            pieces.append(ids if mask is None else ids[mask])

    def _window_chunks(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> Iterator[
        tuple[TilePlan, ClassPlan, tuple[np.ndarray, ...], "np.ndarray | None", np.ndarray]
    ]:
        """Yield per-(tile, class) candidate chunks of a window query.

        Each item is ``(tile_plan, class_plan, columns, mask, ids)`` where
        ``mask`` is the boolean qualification mask over the class table
        (``None`` means *all* rectangles qualify — the covered-tile case).
        The refinement machinery consumes the full tuples; plain filtering
        only uses ``mask``/``ids``.
        """
        if self._n_objects == 0:
            return
        ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                tables = self._tiles.get(base + ix)
                if tables is None:
                    continue
                plan = plan_tile(ix, iy, ix0, ix1, iy0, iy1)
                if stats is not None:
                    stats.partitions_visited += 1
                for cp in plan.classes:
                    table = tables[cp.code]
                    if table is None:
                        continue
                    cols = table.columns()
                    xl, yl, xu, yu, ids = cols
                    if ids.shape[0] == 0:
                        continue
                    if stats is not None:
                        stats.rects_scanned += ids.shape[0]
                        stats.comparisons += cp.n_comparisons * ids.shape[0]
                        stats.visit_class(CLASS_NAMES[cp.code])
                    mask: "np.ndarray | None" = None
                    if cp.xu_ge:
                        mask = xu >= window.xl
                    if cp.xl_le:
                        m = xl <= window.xu
                        mask = m if mask is None else mask & m
                    if cp.yu_ge:
                        m = yu >= window.yl
                        mask = m if mask is None else mask & m
                    if cp.yl_le:
                        m = yl <= window.yu
                        mask = m if mask is None else mask & m
                    yield plan, cp, cols, mask, ids

    def window_query_within(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Ids of all MBRs **fully contained** in ``window`` (a "within"
        predicate, the other standard range semantics).

        Duplicate avoidance is even cheaper than for intersection: an
        object inside ``W`` has its start point inside ``W``, so its
        (unique) class-A replica lives in a tile of the query range —
        scanning *only* class A everywhere yields each candidate exactly
        once.  Comparisons: the start-side tests are automatic except in
        the query's first tile per dimension; the end-side tests are
        always required (an object may leave its start tile).
        """
        if self._n_objects == 0:
            return _EMPTY_IDS
        with trace_span("query.window"):
            with trace_span("filter.lookup"):
                ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                for iy in range(iy0, iy1 + 1):
                    base = iy * self.grid.nx
                    for ix in range(ix0, ix1 + 1):
                        tables = self._tiles.get(base + ix)
                        if tables is None:
                            continue
                        table = tables[CLASS_A]
                        if table is None:
                            continue
                        xl, yl, xu, yu, ids = table.columns()
                        if ids.shape[0] == 0:
                            continue
                        if stats is not None:
                            stats.partitions_visited += 1
                            stats.rects_scanned += ids.shape[0]
                            stats.visit_class("A")
                        mask = (xu <= window.xu) & (yu <= window.yu)
                        n_comparisons = 2
                        if ix == ix0:
                            mask &= xl >= window.xl
                            n_comparisons += 1
                        if iy == iy0:
                            mask &= yl >= window.yl
                            n_comparisons += 1
                        if stats is not None:
                            stats.comparisons += n_comparisons * ids.shape[0]
                        pieces.append(ids[mask])
            with trace_span("dedup"):
                pass  # class A only — each object appears once
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def count_window(self, window: Rect) -> int:
        """Number of results of a window query (no id materialisation)."""
        total = 0
        for _plan, _cp, _cols, mask, ids in self._window_chunks(window):
            total += ids.shape[0] if mask is None else int(np.count_nonzero(mask))
        return total

    # -- disk queries -------------------------------------------------------------

    def disk_query(
        self, query: DiskQuery, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Ids of all indexed MBRs whose distance to the centre is <= radius.

        Section IV-E: only tiles intersecting the disk are visited; a class
        is skipped when the previous tile in its "starts before" dimension
        also intersects the disk (the result would be a duplicate of that
        tile's).  Tiles fully covered by the disk are reported without
        distance computations.  Classes B and D additionally pass a
        canonical-tile test that removes the duplicates arising along the
        disk's boundary arc (the paper's diagonal rule; see Fig. 5).
        """
        if self._n_objects == 0:
            return _EMPTY_IDS
        with trace_span("query.disk"):
            with trace_span("filter.lookup"):
                row_span, tile_jobs = self._disk_plan(query)
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                for tile_id, codes, covered, iy in tile_jobs:
                    tables = self._tiles.get(tile_id)
                    if tables is None:
                        continue
                    self._scan_tile_disk(
                        tables, query, codes, covered, iy, row_span, pieces, stats
                    )
            with trace_span("dedup"):
                pass  # residual B/D duplicates removed in-scan (canonical tile)
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def _disk_plan(
        self, query: DiskQuery
    ) -> tuple[
        dict[int, tuple[int, int]],
        list[tuple[int, tuple[int, ...], bool, int]],
    ]:
        """The §IV-E evaluation plan for one disk query.

        Returns the per-row contiguous tile spans (disk convexity) and a
        flat job list ``(tile_id, scanned class codes, fully_covered,
        row)`` — everything a per-tile scan needs, so the tiles-based
        batch evaluator (:mod:`repro.core.batch`) can group jobs by tile.
        """
        window = query.mbr()
        ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
        radius = query.radius
        cx, cy = query.cx, query.cy

        row_span: dict[int, tuple[int, int]] = {}
        for iy in range(iy0, iy1 + 1):
            lo = None
            hi = None
            for ix in range(ix0, ix1 + 1):
                if min_dist_point_rect(cx, cy, self.grid.tile_rect(ix, iy)) <= radius:
                    if lo is None:
                        lo = ix
                    hi = ix
            if lo is not None:
                row_span[iy] = (lo, hi)  # type: ignore[assignment]

        jobs: list[tuple[int, tuple[int, ...], bool, int]] = []
        for iy, (lx, rx) in row_span.items():
            base = iy * self.grid.nx
            prev_row = row_span.get(iy - 1)
            for ix in range(lx, rx + 1):
                prev_x_in = ix > lx
                prev_y_in = prev_row is not None and prev_row[0] <= ix <= prev_row[1]
                codes = [CLASS_A]
                if not prev_y_in:
                    codes.append(CLASS_B)
                if not prev_x_in:
                    codes.append(CLASS_C)
                if not prev_x_in and not prev_y_in:
                    codes.append(CLASS_D)
                covered = (
                    max_dist_point_rect(cx, cy, self.grid.tile_rect(ix, iy)) <= radius
                )
                jobs.append((base + ix, tuple(codes), covered, iy))
        return row_span, jobs

    def _scan_tile_disk(
        self,
        tables: list["TileTable | None"],
        query: DiskQuery,
        codes: tuple[int, ...],
        covered: bool,
        iy: int,
        row_span: dict[int, tuple[int, int]],
        pieces: list[np.ndarray],
        stats: "QueryStats | None" = None,
    ) -> None:
        """Scan one tile's relevant classes for one disk query."""
        radius = query.radius
        cx, cy = query.cx, query.cy
        if stats is not None:
            stats.partitions_visited += 1
        for code in codes:
            table = tables[code]
            if table is None:
                continue
            xl, yl, xu, yu, ids = table.columns()
            if ids.shape[0] == 0:
                continue
            if stats is not None:
                stats.rects_scanned += ids.shape[0]
                stats.visit_class(CLASS_NAMES[code])
            if covered:
                qual = np.ones(ids.shape[0], dtype=bool)
            else:
                dx = np.maximum(np.maximum(xl - cx, 0.0), cx - xu)
                dy = np.maximum(np.maximum(yl - cy, 0.0), cy - yu)
                qual = dx * dx + dy * dy <= radius * radius
                if stats is not None:
                    stats.comparisons += 2 * ids.shape[0]
            if code in (CLASS_B, CLASS_D):
                qual &= self._canonical_keep(xl, yl, xu, iy, row_span, stats)
            pieces.append(ids[qual])

    def _canonical_keep(
        self,
        xl: np.ndarray,
        yl: np.ndarray,
        xu: np.ndarray,
        iy: int,
        row_span: dict[int, tuple[int, int]],
        stats: "QueryStats | None",
    ) -> np.ndarray:
        """Keep mask for class-B/D rectangles: is this their canonical tile?

        A rectangle's canonical reporting tile is the first tile (in
        row-major order) among the disk-intersecting tiles its MBR covers.
        Class-B/D rectangles start above the current row, so the test scans
        the rows between the rectangle's start row and the current row for
        an overlap with the rectangle's column span; any overlap means the
        rectangle was already reported there.
        """
        n = xl.shape[0]
        keep = np.ones(n, dtype=bool)
        start_rows = self.grid.tile_iy_array(yl)
        start_cols = self.grid.tile_ix_array(xl)
        end_cols = self.grid.tile_ix_array(xu)
        for k in range(n):
            for j in range(int(start_rows[k]), iy):
                span = row_span.get(j)
                if span is None:
                    continue
                if max(int(start_cols[k]), span[0]) <= min(int(end_cols[k]), span[1]):
                    keep[k] = False
                    break
            if stats is not None:
                stats.dedup_checks += 1
        return keep
