"""k-nearest-neighbour queries over the two-layer grid (paper future work).

The paper's conclusions list nearest-neighbour queries over SOP indices
with secondary partitioning as future work.  This module implements kNN
by *radius doubling over duplicate-free disk queries*: the two-layer
disk query (Section IV-E) already enumerates each object at most once,
so kNN needs no extra deduplication machinery.

Algorithm: start from a radius estimated from the average object density
(so the first probe already lands near k results), run the class-based
disk query, and double the radius until at least ``k`` objects are
found; then compute exact MBR distances for the found set, take the
k-th smallest, and — because objects may have been missed between the
k-th distance and the probe circle only if the k-th distance exceeds the
probe radius — run one final disk query at the k-th distance to close
the boundary.  Expected cost: O(1) probes for uniform-ish data, each a
duplicate-free two-layer disk query.
"""

from __future__ import annotations

import math

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.datasets.queries import DiskQuery
from repro.errors import InvalidQueryError
from repro.core.two_layer import TwoLayerGrid
from repro.obs.tracing import span as trace_span
from repro.stats import QueryStats

__all__ = ["knn_query"]


def knn_query(
    index: TwoLayerGrid,
    data: RectDataset,
    cx: float,
    cy: float,
    k: int,
    stats: "QueryStats | None" = None,
) -> np.ndarray:
    """Ids of the ``k`` indexed objects nearest to ``(cx, cy)``.

    Distances are MBR minimum distances (the filtering-step metric).
    ``data`` is the :class:`~repro.datasets.dataset.RectDataset` the
    index was built over (the paper's design stores exact per-object data
    once, outside the tiles — Section III).  Ties at the k-th distance
    are broken by id for determinism.
    """
    if k < 1:
        raise InvalidQueryError(f"k must be >= 1, got {k}")
    n = len(index)
    if n != len(data):
        raise InvalidQueryError(
            f"index covers {n} objects but dataset has {len(data)}"
        )
    if k >= n:
        return np.arange(n, dtype=np.int64)

    def dists(ids: np.ndarray) -> np.ndarray:
        dx = np.maximum(np.maximum(data.xl[ids] - cx, 0.0), cx - data.xu[ids])
        dy = np.maximum(np.maximum(data.yl[ids] - cy, 0.0), cy - data.yu[ids])
        return np.hypot(dx, dy)

    with trace_span("query.knn"):
        domain = index.grid.domain
        # Density-guided initial radius: expect ~k results in pi*r^2 * n/area.
        density = n / max(domain.area, 1e-300)
        radius = max(
            math.sqrt(k / (math.pi * density)),
            min(index.grid.tile_w, index.grid.tile_h) / 4.0,
        )
        max_radius = math.hypot(domain.width, domain.height) + 1e-9

        found = index.disk_query(DiskQuery(cx, cy, radius), stats)
        while found.shape[0] < k and radius < max_radius:
            radius = min(radius * 2.0, max_radius)
            found = index.disk_query(DiskQuery(cx, cy, radius), stats)

        with trace_span("knn.rank"):
            d = dists(found)
            order = np.lexsort((found, d))
            kth_dist = float(d[order[k - 1]])
        if kth_dist > radius:
            # Close the boundary: everything within the k-th distance.
            found = index.disk_query(DiskQuery(cx, cy, kth_dist), stats)
            with trace_span("knn.rank"):
                d = dists(found)
                order = np.lexsort((found, d))
        return found[order[:k]].astype(np.int64)
