"""Class selection and comparison minimisation (Sections IV-A and IV-B).

Given a window query ``W`` and a tile ``T`` at grid position ``(ix, iy)``
inside the query's tile range ``[ix0, ix1] x [iy0, iy1]``, this module
answers two questions *per secondary partition* (class A/B/C/D):

1. **Should the class be scanned at all?**  Lemma 1: if ``W`` starts
   before ``T`` in x (``ix > ix0``), classes C and D can only produce
   duplicates and are skipped.  Lemma 2 is the y-symmetric statement for
   classes B and D.  Consequently class A is always scanned, B only in the
   query's first tile row, C only in its first tile column and D only in
   the single tile containing the query's start corner.

2. **Which comparisons does a scanned rectangle need?**  A tile strictly
   between the query's first and last tile in a dimension is covered by
   ``W`` there — no comparison (Section IV-B).  In the first tile of a
   dimension, ``r.du >= W.dl`` is required (Lemma 4); in the last tile,
   ``r.dl <= W.du`` is required (Lemma 3) *but only for classes that start
   inside the tile in that dimension* — a class-C/D rectangle satisfies
   ``r.xl < T.xl <= W.xl <= W.xu`` automatically, which is an extra saving
   the secondary partitioning unlocks on top of Section IV-B.

Corollary 1 falls out: when the query spans more than one tile per
dimension, every scanned rectangle needs at most one comparison per
dimension, i.e. at most two comparisons in total.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grid.base import CLASS_A, CLASS_B, CLASS_C, CLASS_D

__all__ = ["ClassPlan", "TilePlan", "plan_tile", "window_regions"]

#: classes whose rectangles start inside their tile in x (relevant to Lemma 3).
_STARTS_INSIDE_X = (CLASS_A, CLASS_B)
#: classes whose rectangles start inside their tile in y.
_STARTS_INSIDE_Y = (CLASS_A, CLASS_C)


@dataclass(frozen=True, slots=True)
class ClassPlan:
    """The comparisons one scanned class needs in one tile.

    Each flag names a comparison against the query window ``W``:
    ``xu_ge`` means ``r.xu >= W.xl`` must be verified, etc.  Flags that are
    False are *guaranteed satisfied* for every rectangle of the class in
    the tile — no comparison is executed.
    """

    code: int
    xu_ge: bool  # r.xu >= W.xl   (Lemma 4, first tile column)
    xl_le: bool  # r.xl <= W.xu   (Lemma 3, last tile column)
    yu_ge: bool  # r.yu >= W.yl   (Lemma 4, first tile row)
    yl_le: bool  # r.yl <= W.yu   (Lemma 3, last tile row)

    @property
    def n_comparisons(self) -> int:
        return int(self.xu_ge) + int(self.xl_le) + int(self.yu_ge) + int(self.yl_le)


@dataclass(frozen=True, slots=True)
class TilePlan:
    """Scanned classes (with their comparison plans) for one tile.

    Plans depend only on the four boundary flags, so all sixteen possible
    plans are precomputed at import time and :func:`plan_tile` is a table
    lookup — tile planning costs nothing on the query hot path.
    """

    at_x0: bool  # query starts in this tile column
    at_x1: bool  # query ends in this tile column
    at_y0: bool
    at_y1: bool
    classes: tuple[ClassPlan, ...]


def _build_plan(at_x0: bool, at_x1: bool, at_y0: bool, at_y1: bool) -> TilePlan:
    codes = [CLASS_A]
    if at_y0:
        codes.append(CLASS_B)  # Lemma 2 lets B survive only in the first row
    if at_x0:
        codes.append(CLASS_C)  # Lemma 1 lets C survive only in the first column
    if at_x0 and at_y0:
        codes.append(CLASS_D)  # D survives only in the query's start tile

    plans = tuple(
        ClassPlan(
            code=code,
            xu_ge=at_x0,
            xl_le=at_x1 and code in _STARTS_INSIDE_X,
            yu_ge=at_y0,
            yl_le=at_y1 and code in _STARTS_INSIDE_Y,
        )
        for code in sorted(codes)
    )
    return TilePlan(at_x0, at_x1, at_y0, at_y1, plans)


_PLANS: tuple[TilePlan, ...] = tuple(
    _build_plan(bool(key & 8), bool(key & 4), bool(key & 2), bool(key & 1))
    for key in range(16)
)


def plan_tile(ix: int, iy: int, ix0: int, ix1: int, iy0: int, iy1: int) -> TilePlan:
    """Evaluation plan for tile ``(ix, iy)`` of a window query.

    ``[ix0, ix1] x [iy0, iy1]`` is the query's tile range; the tile must
    lie inside it.  O(1): a lookup into the sixteen precomputed plans.
    """
    key = (
        (8 if ix == ix0 else 0)
        | (4 if ix == ix1 else 0)
        | (2 if iy == iy0 else 0)
        | (1 if iy == iy1 else 0)
    )
    return _PLANS[key]


def _axis_segments(lo: int, hi: int) -> list[tuple[int, int, bool, bool]]:
    """Split ``[lo, hi]`` into runs of uniform (at-start, at-end) flags."""
    if lo == hi:
        return [(lo, hi, True, True)]
    segments = [(lo, lo, True, False)]
    if hi - lo > 1:
        segments.append((lo + 1, hi - 1, False, False))
    segments.append((hi, hi, False, True))
    return segments


def window_regions(
    ix0: int, ix1: int, iy0: int, iy1: int
) -> list[tuple[int, int, int, int, TilePlan]]:
    """Decompose a query's tile range into plan-uniform rectangles.

    Every tile of a region ``(ax, bx, ay, by)`` (inclusive bounds) shares
    the same :class:`TilePlan`, so a fused kernel can evaluate the whole
    region with one comparison pass instead of planning tile by tile.  At
    most 9 regions exist (3 x-segments × 3 y-segments: first column /
    interior / last column crossed with the row equivalents), fewer when
    the range is thin.
    """
    out = []
    for ay, by, at_y0, at_y1 in _axis_segments(iy0, iy1):
        for ax, bx, at_x0, at_x1 in _axis_segments(ix0, ix1):
            key = (
                (8 if at_x0 else 0)
                | (4 if at_x1 else 0)
                | (2 if at_y0 else 0)
                | (1 if at_y1 else 0)
            )
            out.append((ax, bx, ay, by, _PLANS[key]))
    return out


def plan_for_region(
    window_xl: float,
    window_yl: float,
    window_xu: float,
    window_yu: float,
    region_xl: float,
    region_yl: float,
    region_xu: float,
    region_yu: float,
) -> TilePlan:
    """Evaluation plan for an arbitrary half-open SOP partition.

    The secondary partitioning applies to *any* space-oriented partition,
    not just grid tiles (footnote 1 / Table V: the quad-tree benefits
    too).  For a partition with the given bounds that is known to
    intersect the window, the grid flags generalise to:

    * ``at_x0`` — the window starts at/inside the partition in x
      (``W.xl >= region.xl``); otherwise Lemma 1 skips classes C/D.
    * ``at_x1`` — the window ends inside the partition in x
      (``W.xu < region.xu``); otherwise the partition is covered to the
      right and ``r.xl <= W.xu`` is automatic.

    and symmetrically for y.
    """
    key = (
        (8 if window_xl >= region_xl else 0)
        | (4 if window_xu < region_xu else 0)
        | (2 if window_yl >= region_yl else 0)
        | (1 if window_yu < region_yu else 0)
    )
    return _PLANS[key]
