"""2-layer⁺: the two-layer grid with decomposed (DSM) storage — Section IV-C.

2-layer⁺ stores, on top of the plain secondary partitions of
:class:`~repro.core.two_layer.TwoLayerGrid`, a second *decomposed* copy of
every partition's rectangles (sorted ``(coordinate, id)`` tables, Table
II).  Window queries on boundary tiles then replace per-rectangle
comparisons with binary searches:

* one needed comparison — a single ``searchsorted`` yields the qualifying
  prefix/suffix, zero per-rectangle comparisons;
* several needed comparisons — the search runs on the table of the
  dimension *least covered* by the window (most selective first), and the
  survivors verify the remaining comparisons against the full MBRs.

The extra copy makes 2-layer⁺ larger and slower to build than 2-layer
(Fig. 7) and more expensive to update, which the paper deems acceptable
for static collections; inserts here rebuild the affected partitions'
decomposed tables lazily on the next query.

Disk queries are inherited unchanged from :class:`TwoLayerGrid` — storage
decomposition cannot improve distance computations (Section VII).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.geometry.mbr import Rect
from repro.core.decomposed import (
    COMP_XL_LE,
    COMP_XU_GE,
    COMP_YL_LE,
    COMP_YU_GE,
    REQUIRED_TABLES,
    _SOURCE_COLUMN,
    DecomposedTables,
)
from repro.core.selection import plan_tile
from repro.core.two_layer import TwoLayerGrid
from repro.grid.base import CLASS_NAMES, GridPartitioner
from repro.obs.tracing import active as tracing_active, span as trace_span
from repro.stats import QueryStats

__all__ = ["TwoLayerPlusGrid"]

_EMPTY_IDS = np.empty(0, dtype=np.int64)


#: strategies for partitions needing more than one comparison:
#: ``"scan"`` evaluates them with vectorised comparisons on the plain class
#: table (fastest under NumPy's per-call cost model), ``"search_verify"``
#: follows Section IV-C literally (binary search on the least-covered
#: dimension, verify survivors against the full MBRs).  ``"auto"`` picks
#: ``"scan"``.  The ablation benchmark compares the two.
MULTI_COMPARISON_STRATEGIES = ("auto", "scan", "search_verify")


class TwoLayerPlusGrid(TwoLayerGrid):
    """Two-layer grid + decomposed sorted tables per secondary partition.

    Single-comparison partitions (the common case for queries spanning
    several tiles, by Lemmas 3-4) are answered with one binary search and
    zero per-rectangle comparisons.  Multi-comparison partitions honour
    ``multi_comparison_strategy`` (see
    :data:`MULTI_COMPARISON_STRATEGIES`): the paper's search+verify order
    is available, but the default scans the class table vectorised, which
    is faster under Python/NumPy where a random id-gather costs more than
    a sequential compare — a documented deviation from the C++ original.
    """

    def __init__(
        self,
        grid: GridPartitioner,
        multi_comparison_strategy: str = "auto",
        storage: "str | None" = None,
    ):
        super().__init__(grid, storage=storage)
        if multi_comparison_strategy not in MULTI_COMPARISON_STRATEGIES:
            raise ValueError(
                f"unknown strategy {multi_comparison_strategy!r}; "
                f"expected one of {MULTI_COMPARISON_STRATEGIES}"
            )
        self.multi_comparison_strategy = (
            "scan" if multi_comparison_strategy == "auto" else multi_comparison_strategy
        )
        # (tile_id, class_code) -> DecomposedTables; rebuilt lazily after
        # inserts invalidate a partition.
        self._decomposed: dict[tuple[int, int], DecomposedTables] = {}
        self._stale: set[tuple[int, int]] = set()
        # Per-column sort orders over the whole packed base (absolute row
        # indices, segment-sorted per partition), restored from a
        # columnar archive; lets _decomposed_for skip the per-partition
        # argsort.  Cleared by any update — the base rows shift.
        self._persisted_orders: "tuple[np.ndarray, ...] | None" = None
        # Global MBR columns by object id, used to verify residual
        # comparisons after a binary search ("accessing the entire MBR").
        self._g_xl = _EMPTY_IDS.astype(np.float64)
        self._g_yl = self._g_xl
        self._g_xu = self._g_xl
        self._g_yu = self._g_xl

    # -- construction -----------------------------------------------------

    @classmethod
    def build(
        cls,
        data: RectDataset,
        partitions_per_dim: int = 128,
        domain: "Rect | None" = None,
        multi_comparison_strategy: str = "auto",
        storage: "str | None" = None,
    ) -> "TwoLayerPlusGrid":
        """Bulk-load from a dataset (square N x N grid, like the paper)."""
        from repro.grid.base import GridPartitioner

        grid = GridPartitioner(
            partitions_per_dim,
            partitions_per_dim,
            domain if domain is not None else Rect(0.0, 0.0, 1.0, 1.0),
        )
        index = cls(
            grid,
            multi_comparison_strategy=multi_comparison_strategy,
            storage=storage,
        )
        index._bulk_load(data)
        return index

    def _bulk_load(self, data: RectDataset) -> None:
        super()._bulk_load(data)
        self._g_xl = data.xl.copy()
        self._g_yl = data.yl.copy()
        self._g_xu = data.xu.copy()
        self._g_yu = data.yu.copy()
        if self._store is not None:
            for key in np.flatnonzero(self._store.group_counts()):
                tile_id, code = divmod(int(key), 4)
                cols = self._store.group_columns(int(key))
                self._decomposed[(tile_id, code)] = DecomposedTables(*cols, code)
        else:
            for tile_id, tables in self._tiles.items():
                for code, table in enumerate(tables):
                    if table is not None:
                        xl, yl, xu, yu, ids = table.columns()
                        self._decomposed[(tile_id, code)] = DecomposedTables(
                            xl, yl, xu, yu, ids, code
                        )

    def insert(self, rect: Rect, obj_id: "int | None" = None) -> int:
        obj_id = super().insert(rect, obj_id)
        self._persisted_orders = None
        # Memmap-loaded global columns are read-only snapshots; fork
        # them copy-on-write before the first in-place update.
        if not self._g_xl.flags.writeable:
            self._g_xl = self._g_xl.copy()
            self._g_yl = self._g_yl.copy()
            self._g_xu = self._g_xu.copy()
            self._g_yu = self._g_yu.copy()
        # Grow the global columns if needed, then record the new MBR.
        if obj_id >= self._g_xl.shape[0]:
            grow = obj_id + 1 - self._g_xl.shape[0]
            self._g_xl = np.concatenate([self._g_xl, np.empty(grow)])
            self._g_yl = np.concatenate([self._g_yl, np.empty(grow)])
            self._g_xu = np.concatenate([self._g_xu, np.empty(grow)])
            self._g_yu = np.concatenate([self._g_yu, np.empty(grow)])
        self._g_xl[obj_id] = rect.xl
        self._g_yl[obj_id] = rect.yl
        self._g_xu[obj_id] = rect.xu
        self._g_yu[obj_id] = rect.yu
        # Invalidate every decomposed partition the insert touched.
        ix0 = self.grid.tile_ix(rect.xl)
        ix1 = self.grid.tile_ix(rect.xu)
        iy0 = self.grid.tile_iy(rect.yl)
        iy1 = self.grid.tile_iy(rect.yu)
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                code = 2 * (ix > ix0) + (iy > iy0)
                self._stale.add((base + ix, code))
        return obj_id

    def delete(self, rect: Rect, obj_id: int) -> bool:
        """Remove an object and invalidate the affected decomposed tables."""
        found = super().delete(rect, obj_id)
        if found:
            self._persisted_orders = None
            ix0 = self.grid.tile_ix(rect.xl)
            ix1 = self.grid.tile_ix(rect.xu)
            iy0 = self.grid.tile_iy(rect.yl)
            iy1 = self.grid.tile_iy(rect.yu)
            for iy in range(iy0, iy1 + 1):
                base = iy * self.grid.nx
                for ix in range(ix0, ix1 + 1):
                    code = 2 * (ix > ix0) + (iy > iy0)
                    key = (base + ix, code)
                    if self._partition_columns(base + ix, code) is None:
                        # Partition vanished: drop its decomposed copy.
                        self._decomposed.pop(key, None)
                        self._stale.discard(key)
                    else:
                        self._stale.add(key)
        return found

    def compact(self) -> None:
        super().compact()
        # Compaction renumbers base rows; the persisted orders are stale.
        self._persisted_orders = None

    def _decomposed_for(self, tile_id: int, code: int) -> DecomposedTables:
        key = (tile_id, code)
        tables = self._decomposed.get(key)
        if tables is None or key in self._stale:
            tables = self._decomposed_from_orders(tile_id, code)
            if tables is None:
                cols = self._partition_columns(tile_id, code)
                assert cols is not None
                tables = DecomposedTables(*cols, code)
            self._decomposed[key] = tables
            self._stale.discard(key)
        return tables

    def _decomposed_from_orders(
        self, tile_id: int, code: int
    ) -> "DecomposedTables | None":
        """Gather one partition's DSM tables from the persisted orders.

        One slice + gather per required comparison — no argsort.  Only
        valid while the packed base is exactly what the archive held
        (no overlay, no tombstones); any update clears the orders.
        """
        orders = self._persisted_orders
        store = self._store
        if (
            orders is None
            or store is None
            or self._tiles
            or store.n_dead
        ):
            return None
        group = tile_id * 4 + code
        s = int(store.offsets[group])
        e = int(store.offsets[group + 1])
        columns = (store.xl, store.yl, store.xu, store.yu)
        tables: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for comp in REQUIRED_TABLES[code]:
            col = _SOURCE_COLUMN[comp]
            rows = orders[col][s:e]
            tables[comp] = (columns[col][rows], store.ids[rows])
        return DecomposedTables.from_sorted(code, e - s, tables)

    @property
    def nbytes(self) -> int:
        """Base partitions plus the decomposed copy (the Fig. 7 gap)."""
        return super().nbytes + sum(d.nbytes for d in self._decomposed.values())

    # -- window queries ----------------------------------------------------

    def window_query(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        """Window query answered through the decomposed tables."""
        if self._n_objects == 0:
            return _EMPTY_IDS
        # Decomposition only changes *how* residual comparisons are paid
        # for; when nothing needs stats accounting the inherited packed
        # query matrix answers the same question in one comparison pass,
        # which beats a binary search per partition under NumPy dispatch
        # costs at smoke scale and ties at full scale.
        if (
            stats is None
            and self._store is not None
            and not self._tiles
            and not self._store.n_dead
            and tracing_active() is None
        ):
            g = self.grid
            d = g.domain
            ix0 = int((window.xl - d.xl) / g.tile_w)
            ix1 = int((window.xu - d.xl) / g.tile_w)
            iy0 = int((window.yl - d.yl) / g.tile_h)
            iy1 = int((window.yu - d.yl) / g.tile_h)
            last = g.nx - 1
            ix0 = 0 if ix0 < 0 else (last if ix0 > last else ix0)
            ix1 = 0 if ix1 < 0 else (last if ix1 > last else ix1)
            last = g.ny - 1
            iy0 = 0 if iy0 < 0 else (last if iy0 > last else iy0)
            iy1 = 0 if iy1 < 0 else (last if iy1 > last else iy1)
            return self._fused_window_fast(window, ix0, ix1, iy0, iy1)
        with trace_span("query.window"):
            return self._window_query_traced(window, stats)

    def _window_query_traced(
        self, window: Rect, stats: "QueryStats | None"
    ) -> np.ndarray:
        with trace_span("filter.lookup"):
            ix0, ix1, iy0, iy1 = self.grid.tile_range_for_window(window)
        pieces: list[np.ndarray] = []
        with trace_span("filter.scan"):
            self._scan_window_tiles(window, ix0, ix1, iy0, iy1, pieces, stats)
        with trace_span("dedup"):
            pass  # duplicate-free by construction (Lemmas 1-2)
        if not pieces:
            return _EMPTY_IDS
        return np.concatenate(pieces)

    def _scan_window_tiles(
        self,
        window: Rect,
        ix0: int,
        ix1: int,
        iy0: int,
        iy1: int,
        pieces: list[np.ndarray],
        stats: "QueryStats | None",
    ) -> None:
        # The (comparison, bound) list of a class plan is fixed for the
        # whole query; build each at most once, keyed by plan identity.
        comps_cache: dict[int, tuple[tuple[str, float], ...]] = {}
        for iy in range(iy0, iy1 + 1):
            base = iy * self.grid.nx
            for ix in range(ix0, ix1 + 1):
                if not self._tile_has_rows(base + ix):
                    continue
                plan = plan_tile(ix, iy, ix0, ix1, iy0, iy1)
                if stats is not None:
                    stats.partitions_visited += 1
                for cp in plan.classes:
                    cols = self._partition_columns(base + ix, cp.code)
                    if cols is None:
                        continue
                    comps = comps_cache.get(id(cp))
                    if comps is None:
                        built = []
                        if cp.xu_ge:
                            built.append((COMP_XU_GE, window.xl))
                        if cp.xl_le:
                            built.append((COMP_XL_LE, window.xu))
                        if cp.yu_ge:
                            built.append((COMP_YU_GE, window.yl))
                        if cp.yl_le:
                            built.append((COMP_YL_LE, window.yu))
                        comps = tuple(built)
                        comps_cache[id(cp)] = comps
                    if not comps:
                        # Covered tile: report the whole partition.
                        ids = cols[4]
                        if stats is not None and ids.shape[0]:
                            stats.rects_scanned += ids.shape[0]
                            stats.visit_class(CLASS_NAMES[cp.code])
                        pieces.append(ids)
                        continue
                    if len(comps) == 1:
                        decomposed = self._decomposed_for(base + ix, cp.code)
                        if decomposed.n == 0:
                            continue
                        if stats is not None:
                            stats.rects_scanned += decomposed.n
                            stats.comparisons += max(
                                1, int(np.ceil(np.log2(max(decomposed.n, 2))))
                            )
                            stats.visit_class(CLASS_NAMES[cp.code])
                        pieces.append(decomposed.search(*comps[0]))
                        continue
                    if self.multi_comparison_strategy == "scan":
                        xl, yl, xu, yu, ids = cols
                        if ids.shape[0] == 0:
                            continue
                        if stats is not None:
                            stats.rects_scanned += ids.shape[0]
                            stats.comparisons += len(comps) * ids.shape[0]
                            stats.visit_class(CLASS_NAMES[cp.code])
                        mask: "np.ndarray | None" = None
                        if cp.xu_ge:
                            mask = xu >= window.xl
                        if cp.xl_le:
                            m = xl <= window.xu
                            mask = m if mask is None else mask & m
                        if cp.yu_ge:
                            m = yu >= window.yl
                            mask = m if mask is None else mask & m
                        if cp.yl_le:
                            m = yl <= window.yu
                            mask = m if mask is None else mask & m
                        assert mask is not None
                        pieces.append(ids[mask])
                        continue
                    # Section IV-C literal order: binary search on the
                    # least-covered dimension, verify survivors on MBRs.
                    decomposed = self._decomposed_for(base + ix, cp.code)
                    if decomposed.n == 0:
                        continue
                    if stats is not None:
                        stats.rects_scanned += decomposed.n
                        stats.visit_class(CLASS_NAMES[cp.code])
                    search, rest = self._order_comparisons(
                        list(comps), window, ix, iy
                    )
                    cand = decomposed.search(*search)
                    if stats is not None:
                        stats.comparisons += max(
                            1, int(np.ceil(np.log2(max(decomposed.n, 2))))
                        )
                        stats.comparisons += len(rest) * cand.shape[0]
                    for comp, bound in rest:
                        if cand.shape[0] == 0:
                            break
                        cand = self._verify(cand, comp, bound)
                    pieces.append(cand)

    def _order_comparisons(
        self,
        comps: list[tuple[str, float]],
        window: Rect,
        ix: int,
        iy: int,
    ) -> tuple[tuple[str, float], list[tuple[str, float]]]:
        """Pick the binary-search comparison; the rest are verified.

        Following Section IV-C, the search uses the table of the dimension
        covered the *least* by the window over this tile, which minimises
        the number of survivors needing verification.
        """
        if len(comps) == 1:
            return comps[0], []
        grid = self.grid
        txl = grid.domain.xl + ix * grid.tile_w
        tyl = grid.domain.yl + iy * grid.tile_h
        cover_x = (
            min(window.xu, txl + grid.tile_w) - max(window.xl, txl)
        ) / grid.tile_w
        cover_y = (
            min(window.yu, tyl + grid.tile_h) - max(window.yl, tyl)
        ) / grid.tile_h
        x_comps = [c for c in comps if c[0] in (COMP_XU_GE, COMP_XL_LE)]
        y_comps = [c for c in comps if c[0] not in (COMP_XU_GE, COMP_XL_LE)]
        ordered = x_comps + y_comps if cover_x <= cover_y else y_comps + x_comps
        return ordered[0], ordered[1:]

    def _verify(self, cand: np.ndarray, comp: str, bound: float) -> np.ndarray:
        """Filter candidate ids on one comparison via the global MBRs."""
        if comp == COMP_XU_GE:
            return cand[self._g_xu[cand] >= bound]
        if comp == COMP_XL_LE:
            return cand[self._g_xl[cand] <= bound]
        if comp == COMP_YU_GE:
            return cand[self._g_yu[cand] >= bound]
        return cand[self._g_yl[cand] <= bound]
