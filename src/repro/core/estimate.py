"""Selectivity estimation over the two-layer grid.

The grid doubles as a spatial histogram: the class-A table of each tile
counts the *distinct* objects starting there (every object has exactly
one class-A replica), so summing class-A counts weighted by how much of
each tile a window covers gives an unbiased-under-uniformity estimate of
the result cardinality — the quantity a query optimiser needs to choose
between, say, an index scan and a full scan, or to order a join.

The estimator adds a boundary correction for objects starting left/above
the window (classes B/C/D mass near the window's low edges) by expanding
the window by the dataset's average object extent, the standard
technique for rectangle (rather than point) histograms.
"""

from __future__ import annotations

from repro.geometry.mbr import Rect
from repro.core.two_layer import TwoLayerGrid

__all__ = ["SelectivityEstimator"]


class SelectivityEstimator:
    """Result-cardinality estimates for window queries on a 2-layer grid."""

    def __init__(self, index: TwoLayerGrid, avg_extent: "tuple[float, float] | None" = None):
        self.index = index
        #: per-tile distinct-object (class A) counts: the histogram.
        self._a_counts: dict[int, int] = index._class_a_counts()
        self.avg_extent = avg_extent if avg_extent is not None else (0.0, 0.0)

    @property
    def total_objects(self) -> int:
        return sum(self._a_counts.values())

    def estimate_window(self, window: Rect) -> float:
        """Estimated number of objects intersecting ``window``.

        Uniformity-within-tile assumption: a tile's class-A count spreads
        evenly over the tile, so the tile contributes
        ``count * covered_fraction``.  The window is pre-expanded by the
        average object extent on its low sides, accounting for objects
        that *start* before the window but still reach into it.
        """
        grid = self.index.grid
        expanded = Rect(
            window.xl - self.avg_extent[0],
            window.yl - self.avg_extent[1],
            window.xu,
            window.yu,
        )
        ix0, ix1, iy0, iy1 = grid.tile_range_for_window(expanded)
        total = 0.0
        tile_area = grid.tile_w * grid.tile_h
        for iy in range(iy0, iy1 + 1):
            base = iy * grid.nx
            for ix in range(ix0, ix1 + 1):
                count = self._a_counts.get(base + ix)
                if not count:
                    continue
                tile = grid.tile_rect(ix, iy)
                overlap = tile.overlap_area(expanded)
                if overlap > 0.0:
                    total += count * (overlap / tile_area)
        return total

    def estimate_selectivity(self, window: Rect) -> float:
        """Estimated fraction of the dataset a window query returns."""
        n = self.total_objects
        if n == 0:
            return 0.0
        return min(self.estimate_window(window) / n, 1.0)
