"""Spatial intersection joins over two-layer grids (paper future work).

The paper's conclusions name spatial joins over SOP indices with
secondary partitioning as future work; this module implements them with
the same duplicate-*avoidance* reasoning as window queries.

Replicate both inputs R and S onto the same grid.  A pair ``(r, s)`` of
intersecting MBRs is conventionally found in *every* tile both overlap,
so classic partition-based joins deduplicate with the reference-point
test on ``r ∩ s`` [9].  With classes, deduplication disappears: report
the pair only where its class combination is *allowed*.

Derivation.  Let ``p = (max(r.xl, s.xl), max(r.yl, s.yl))`` — the lower
corner of ``r ∩ s``, which lies in exactly one (half-open) tile, and in
both rectangles.  In that tile and per dimension, the rectangle whose
start realises the max starts *inside* the tile; the other starts inside
or before.  Hence a combination ``(class_r, class_s)`` is allowed iff in
neither dimension do *both* rectangles start before the tile:

    (A,A) (A,B) (A,C) (A,D) (B,A) (B,C) (C,A) (C,B) (D,A)

and conversely, if a pair matches an allowed combination in a tile, that
tile *is* the tile of ``p`` (per dimension, the max of two starts that
are inside-or-before, at least one inside, falls inside).  Every
intersecting pair is therefore produced exactly once, with zero
deduplication work — the join-shaped analogue of Lemmas 1-2.

A reference-point baseline (:func:`one_layer_spatial_join`) is provided
for comparison, mirroring the 1-layer situation for window queries.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.errors import InvalidGridError
from repro.geometry.mbr import Rect
from repro.grid.base import (
    CLASS_A,
    CLASS_B,
    CLASS_C,
    CLASS_D,
    CLASS_NAMES,
    GridPartitioner,
    replicate,
)
from repro.grid.storage import group_rows
from repro.obs.tracing import span as trace_span
from repro.stats import QueryStats

__all__ = [
    "ALLOWED_CLASS_COMBOS",
    "JOIN_ALGORITHMS",
    "two_layer_spatial_join",
    "one_layer_spatial_join",
    "refine_join_pairs",
    "brute_force_join",
]

#: class combinations (class of r, class of s) that report a pair —
#: exactly those where no dimension has both rectangles starting before
#: the tile.
ALLOWED_CLASS_COMBOS: tuple[tuple[int, int], ...] = (
    (CLASS_A, CLASS_A),
    (CLASS_A, CLASS_B),
    (CLASS_A, CLASS_C),
    (CLASS_A, CLASS_D),
    (CLASS_B, CLASS_A),
    (CLASS_B, CLASS_C),
    (CLASS_C, CLASS_A),
    (CLASS_C, CLASS_B),
    (CLASS_D, CLASS_A),
)


def _tile_class_tables(data: RectDataset, grid: GridPartitioner):
    """tile id -> class code -> (xl, yl, xu, yu, ids) column tuples."""
    rep = replicate(data, grid)
    keys = rep.tile_ids * 4 + rep.class_codes
    tiles: dict[int, dict[int, tuple]] = {}
    for key, rows in group_rows(keys):
        tile_id, code = divmod(key, 4)
        obj = rep.obj_ids[rows]
        tiles.setdefault(tile_id, {})[code] = (
            data.xl[obj],
            data.yl[obj],
            data.xu[obj],
            data.yu[obj],
            obj,
        )
    return tiles


def _pairs_in_tables(table_r, table_s, stats: "QueryStats | None"):
    """All intersecting (id_r, id_s) pairs between two column tables."""
    rxl, ryl, rxu, ryu, rids = table_r
    sxl, syl, sxu, syu, sids = table_s
    out_r = []
    out_s = []
    # Loop the smaller side, test vectorised against the larger.
    if rids.shape[0] <= sids.shape[0]:
        for k in range(rids.shape[0]):
            mask = (
                (sxu >= rxl[k])
                & (sxl <= rxu[k])
                & (syu >= ryl[k])
                & (syl <= ryu[k])
            )
            hit = sids[mask]
            if hit.shape[0]:
                out_r.append(np.full(hit.shape[0], rids[k], dtype=np.int64))
                out_s.append(hit)
        if stats is not None:
            stats.comparisons += 4 * rids.shape[0] * sids.shape[0]
    else:
        for k in range(sids.shape[0]):
            mask = (
                (rxu >= sxl[k])
                & (rxl <= sxu[k])
                & (ryu >= syl[k])
                & (ryl <= syu[k])
            )
            hit = rids[mask]
            if hit.shape[0]:
                out_r.append(hit)
                out_s.append(np.full(hit.shape[0], sids[k], dtype=np.int64))
        if stats is not None:
            stats.comparisons += 4 * rids.shape[0] * sids.shape[0]
    return out_r, out_s


def _pairs_sweep(table_r, table_s, stats: "QueryStats | None"):
    """Intersecting pairs via a forward plane-sweep on the x axis.

    Both sides are sorted by ``xl``; for each rectangle the candidates of
    the other side are the contiguous run whose ``xl`` does not exceed
    its ``xu`` (found by binary search), on which only the y-overlap and
    x-lower test remain.  Beats the nested loop on dense tiles where
    x-sortedness prunes most candidate pairs.
    """
    rxl, ryl, rxu, ryu, rids = table_r
    sxl, syl, sxu, syu, sids = table_s
    order_r = np.argsort(rxl, kind="stable")
    order_s = np.argsort(sxl, kind="stable")
    rxl_s, ryl_s, rxu_s, ryu_s, rids_s = (
        rxl[order_r], ryl[order_r], rxu[order_r], ryu[order_r], rids[order_r],
    )
    sxl_s, syl_s, sxu_s, syu_s, sids_s = (
        sxl[order_s], syl[order_s], sxu[order_s], syu[order_s], sids[order_s],
    )
    out_r: list[np.ndarray] = []
    out_s: list[np.ndarray] = []
    # For every r: S-candidates start where s.xu >= r.xl could hold and
    # end where s.xl > r.xu.  The upper cut is exact via searchsorted on
    # the sorted s.xl; the remaining comparisons are vectorised.
    uppers = np.searchsorted(sxl_s, rxu_s, side="right")
    for k in range(rids_s.shape[0]):
        hi = uppers[k]
        if hi == 0:
            continue
        mask = (
            (sxu_s[:hi] >= rxl_s[k])
            & (syu_s[:hi] >= ryl_s[k])
            & (syl_s[:hi] <= ryu_s[k])
        )
        if stats is not None:
            stats.comparisons += 3 * int(hi)
        hit = sids_s[:hi][mask]
        if hit.shape[0]:
            out_r.append(np.full(hit.shape[0], rids_s[k], dtype=np.int64))
            out_s.append(hit)
    return out_r, out_s


JOIN_ALGORITHMS = ("nested", "sweep")


def two_layer_spatial_join(
    data_r: RectDataset,
    data_s: RectDataset,
    partitions_per_dim: int = 64,
    domain: "Rect | None" = None,
    stats: "QueryStats | None" = None,
    algorithm: str = "nested",
) -> np.ndarray:
    """All intersecting (r, s) id pairs — duplicate-free by construction.

    Returns an ``(n, 2)`` int array of ``[id_in_R, id_in_S]`` rows.  Only
    the nine allowed class combinations are evaluated per tile; no
    deduplication of any kind runs.  ``algorithm`` selects the per-tile
    pair enumeration: ``"nested"`` (vectorised loop over the smaller
    side) or ``"sweep"`` (x-axis plane sweep, better for dense tiles).
    """
    if partitions_per_dim < 1:
        raise InvalidGridError(
            f"partitions_per_dim must be >= 1, got {partitions_per_dim}"
        )
    if algorithm not in JOIN_ALGORITHMS:
        raise InvalidGridError(
            f"unknown join algorithm {algorithm!r}; expected one of "
            f"{JOIN_ALGORITHMS}"
        )
    grid = GridPartitioner(
        partitions_per_dim,
        partitions_per_dim,
        domain if domain is not None else Rect(0.0, 0.0, 1.0, 1.0),
    )
    with trace_span("query.join"):
        with trace_span("join.partition"):
            tiles_r = _tile_class_tables(data_r, grid)
            tiles_s = _tile_class_tables(data_s, grid)

        out_r: list[np.ndarray] = []
        out_s: list[np.ndarray] = []
        with trace_span("filter.scan"):
            for tile_id, classes_r in tiles_r.items():
                classes_s = tiles_s.get(tile_id)
                if classes_s is None:
                    continue
                if stats is not None:
                    stats.partitions_visited += 1
                for code_r, code_s in ALLOWED_CLASS_COMBOS:
                    table_r = classes_r.get(code_r)
                    if table_r is None:
                        continue
                    table_s = classes_s.get(code_s)
                    if table_s is None:
                        continue
                    if stats is not None:
                        stats.visit_class(
                            f"{CLASS_NAMES[code_r]}·{CLASS_NAMES[code_s]}"
                        )
                    if algorithm == "sweep":
                        pr, ps = _pairs_sweep(table_r, table_s, stats)
                    else:
                        pr, ps = _pairs_in_tables(table_r, table_s, stats)
                    out_r.extend(pr)
                    out_s.extend(ps)
        with trace_span("dedup"):
            pass  # allowed class combinations produce each pair once
        if not out_r:
            return np.empty((0, 2), dtype=np.int64)
        return np.stack([np.concatenate(out_r), np.concatenate(out_s)], axis=1)


def one_layer_spatial_join(
    data_r: RectDataset,
    data_s: RectDataset,
    partitions_per_dim: int = 64,
    domain: "Rect | None" = None,
    stats: "QueryStats | None" = None,
) -> np.ndarray:
    """Partition-based join baseline with reference-point dedup [9].

    Every common tile joins *all* its R entries against *all* its S
    entries; a pair is kept only in the tile containing the lower corner
    of ``r ∩ s`` — duplicates are generated and then eliminated, like the
    1-layer grid does for window queries.
    """
    if partitions_per_dim < 1:
        raise InvalidGridError(
            f"partitions_per_dim must be >= 1, got {partitions_per_dim}"
        )
    grid = GridPartitioner(
        partitions_per_dim,
        partitions_per_dim,
        domain if domain is not None else Rect(0.0, 0.0, 1.0, 1.0),
    )

    def tile_tables(data):
        rep = replicate(data, grid)
        tiles = {}
        for tile_id, rows in group_rows(rep.tile_ids):
            obj = rep.obj_ids[rows]
            tiles[tile_id] = (
                data.xl[obj], data.yl[obj], data.xu[obj], data.yu[obj], obj,
            )
        return tiles

    with trace_span("query.join"):
        with trace_span("join.partition"):
            tiles_r = tile_tables(data_r)
            tiles_s = tile_tables(data_s)
        out_r: list[np.ndarray] = []
        out_s: list[np.ndarray] = []
        with trace_span("filter.scan"):
            for tile_id, table_r in tiles_r.items():
                table_s = tiles_s.get(tile_id)
                if table_s is None:
                    continue
                if stats is not None:
                    stats.partitions_visited += 1
                    stats.visit_class("tile")
                ix, iy = grid.tile_coords(tile_id)
                rxl, ryl, rxu, ryu, rids = table_r
                sxl, syl, sxu, syu, sids = table_s
                for k in range(rids.shape[0]):
                    mask = (
                        (sxu >= rxl[k])
                        & (sxl <= rxu[k])
                        & (syu >= ryl[k])
                        & (syl <= ryu[k])
                    )
                    hit = np.flatnonzero(mask)
                    if hit.shape[0] == 0:
                        continue
                    # Reference point of each pair's intersection.
                    px = np.maximum(sxl[hit], rxl[k])
                    py = np.maximum(syl[hit], ryl[k])
                    keep = (grid.tile_ix_array(px) == ix) & (
                        grid.tile_iy_array(py) == iy
                    )
                    if stats is not None:
                        stats.dedup_checks += hit.shape[0]
                        stats.duplicates_generated += int(
                            hit.shape[0] - keep.sum()
                        )
                    hit = hit[keep]
                    if hit.shape[0]:
                        out_r.append(
                            np.full(hit.shape[0], rids[k], dtype=np.int64)
                        )
                        out_s.append(sids[hit])
                if stats is not None:
                    stats.comparisons += 4 * rids.shape[0] * sids.shape[0]
        with trace_span("dedup"):
            # Reference-point dedup on r ∩ s runs interleaved per tile in
            # the scan; counted via stats.dedup_checks.
            pass
        if not out_r:
            return np.empty((0, 2), dtype=np.int64)
        return np.stack([np.concatenate(out_r), np.concatenate(out_s)], axis=1)


def refine_join_pairs(
    data_r: RectDataset, data_s: RectDataset, pairs: np.ndarray
) -> np.ndarray:
    """Refinement step for a spatial join: keep pairs whose *exact*
    geometries intersect (Section V applied to joins).

    ``pairs`` is the MBR-level output of a join function.  Datasets
    without exact geometries pass through unchanged (MBR == geometry).
    """
    from repro.geometry.predicates import geometry_intersects_geometry

    if data_r.geometries is None and data_s.geometries is None:
        return pairs
    keep = [
        k
        for k in range(pairs.shape[0])
        if geometry_intersects_geometry(
            data_r.geometry(int(pairs[k, 0])), data_s.geometry(int(pairs[k, 1]))
        )
    ]
    return pairs[keep] if keep else np.empty((0, 2), dtype=np.int64)


def brute_force_join(data_r: RectDataset, data_s: RectDataset) -> np.ndarray:
    """Ground-truth O(|R| * |S|) join (testing / verification)."""
    out_r = []
    out_s = []
    for k in range(len(data_r)):
        mask = (
            (data_s.xu >= data_r.xl[k])
            & (data_s.xl <= data_r.xu[k])
            & (data_s.yu >= data_r.yl[k])
            & (data_s.yl <= data_r.yu[k])
        )
        hit = np.flatnonzero(mask)
        if hit.shape[0]:
            out_r.append(np.full(hit.shape[0], k, dtype=np.int64))
            out_s.append(hit.astype(np.int64))
    if not out_r:
        return np.empty((0, 2), dtype=np.int64)
    return np.stack([np.concatenate(out_r), np.concatenate(out_s)], axis=1)
