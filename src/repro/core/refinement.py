"""Refinement step of range queries over exact geometries — Section V.

A range query over non-point objects runs in two steps: *filtering* finds
the candidate MBRs intersecting the range (the index's job) and
*refinement* tests each candidate's exact geometry.  Refinement dominates
query cost for window queries, so the paper adds a *secondary filter*
between the steps:

* **Simple** — every filtering candidate is refined (the baseline).
* **RefAvoid** — Lemma 5: if at least one side of a candidate's MBR lies
  inside the range, the object certainly intersects the range; for
  windows this is "one MBR projection covered by the window's" (<= 4
  comparisons), for disks "two MBR corners inside the disk" (<= 4
  distance computations).  Only candidates failing the test are refined.
* **RefAvoid⁺** — windows only: the two-layer index's class knowledge
  pays again.  In a tile the window starts before in dimension ``d``,
  every scanned class starts *inside* the tile, hence ``W.dl < r.dl`` is
  already known and the coverage test in ``d`` shrinks to
  ``r.du <= W.du``; conversely a class that starts before the tile can
  never be covered in ``d`` and the test is skipped outright.

The engine reports a per-phase time breakdown (filtering / secondary
filtering / refinement), which is what Fig. 6 plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.datasets.queries import DiskQuery
from repro.errors import InvalidQueryError
from repro.geometry.mbr import Rect
from repro.geometry.predicates import (
    geometry_intersects_disk,
    geometry_intersects_window,
)
from repro.grid.base import CLASS_A, CLASS_B, CLASS_C
from repro.core.two_layer import TwoLayerGrid
from repro.obs.tracing import span as trace_span
from repro.stats import QueryStats

__all__ = ["REFINEMENT_MODES", "RefinementBreakdown", "RefinementEngine"]

REFINEMENT_MODES = ("simple", "refavoid", "refavoid_plus")

_STARTS_INSIDE_X = (CLASS_A, CLASS_B)
_STARTS_INSIDE_Y = (CLASS_A, CLASS_C)


@dataclass
class RefinementBreakdown:
    """Per-phase accounting of one or more refined range queries."""

    filtering_time: float = 0.0
    secondary_filter_time: float = 0.0
    refinement_time: float = 0.0
    candidates: int = 0
    refinements_avoided: int = 0
    refinement_tests: int = 0
    results: int = 0
    queries: int = 0

    @property
    def total_time(self) -> float:
        return self.filtering_time + self.secondary_filter_time + self.refinement_time

    @property
    def avoided_fraction(self) -> float:
        """Fraction of candidates certified without refinement (Fig. 6 claim)."""
        return self.refinements_avoided / max(self.candidates, 1)

    def merge(self, other: "RefinementBreakdown") -> None:
        self.filtering_time += other.filtering_time
        self.secondary_filter_time += other.secondary_filter_time
        self.refinement_time += other.refinement_time
        self.candidates += other.candidates
        self.refinements_avoided += other.refinements_avoided
        self.refinement_tests += other.refinement_tests
        self.results += other.results
        self.queries += other.queries


@dataclass
class _Chunk:
    """One filtering-output chunk with the context RefAvoid⁺ needs."""

    ids: np.ndarray
    xl: np.ndarray
    yl: np.ndarray
    xu: np.ndarray
    yu: np.ndarray
    code: int
    at_x0: bool
    at_y0: bool


class RefinementEngine:
    """Evaluates refined (exact-geometry) range queries over a 2-layer grid.

    Parameters
    ----------
    index:
        a built :class:`TwoLayerGrid` (or subclass) over ``data``'s MBRs.
    data:
        the dataset; ``data.geometries`` supplies the exact geometries
        (datasets without geometries degenerate to MBR-equals-geometry,
        for which every refinement trivially succeeds).
    """

    def __init__(self, index: TwoLayerGrid, data: RectDataset):
        if len(index) != len(data):
            raise InvalidQueryError(
                f"index covers {len(index)} objects but dataset has {len(data)}"
            )
        self.index = index
        self.data = data

    # -- window queries ------------------------------------------------------

    def window(
        self,
        window: Rect,
        mode: str = "refavoid_plus",
        breakdown: "RefinementBreakdown | None" = None,
        stats: "QueryStats | None" = None,
    ) -> np.ndarray:
        """Ids of objects whose *exact geometry* intersects ``window``."""
        if mode not in REFINEMENT_MODES:
            raise InvalidQueryError(
                f"unknown refinement mode {mode!r}; expected one of {REFINEMENT_MODES}"
            )
        track = breakdown if breakdown is not None else RefinementBreakdown()

        with trace_span("query.window"):
            # Phase 1 — filtering: candidate MBRs via the two-layer index.
            t0 = time.perf_counter()
            with trace_span("filter.scan"):
                chunks = [
                    _Chunk(
                        ids=ids if mask is None else ids[mask],
                        xl=cols[0] if mask is None else cols[0][mask],
                        yl=cols[1] if mask is None else cols[1][mask],
                        xu=cols[2] if mask is None else cols[2][mask],
                        yu=cols[3] if mask is None else cols[3][mask],
                        code=cp.code,
                        at_x0=plan.at_x0,
                        at_y0=plan.at_y0,
                    )
                    for plan, cp, cols, mask, ids in self.index._window_chunks(
                        window, stats
                    )
                ]
            t1 = time.perf_counter()
            track.filtering_time += t1 - t0
            n_candidates = sum(c.ids.shape[0] for c in chunks)
            track.candidates += n_candidates

            # Phase 2 — secondary filtering (Lemma 5).
            certified: list[np.ndarray] = []
            to_refine: list[np.ndarray] = []
            with trace_span("refine.secondary"):
                if mode == "simple":
                    to_refine = [c.ids for c in chunks]
                else:
                    for c in chunks:
                        covered = self._window_coverage_mask(c, window, mode, stats)
                        certified.append(c.ids[covered])
                        to_refine.append(c.ids[~covered])
            t2 = time.perf_counter()
            track.secondary_filter_time += t2 - t1
            n_certified = sum(a.shape[0] for a in certified)
            track.refinements_avoided += n_certified
            if stats is not None:
                stats.refinements_avoided += n_certified

            # Phase 3 — refinement: exact geometry tests on the rest.
            survivors: list[int] = []
            geometries = self.data.geometries
            with trace_span("refine.exact"):
                for ids in to_refine:
                    for oid in ids:
                        oid = int(oid)
                        track.refinement_tests += 1
                        if stats is not None:
                            stats.refinement_tests += 1
                        if geometries is None or geometry_intersects_window(
                            geometries[oid], window
                        ):
                            survivors.append(oid)
            t3 = time.perf_counter()
            track.refinement_time += t3 - t2
            track.queries += 1

            parts = certified + [np.asarray(survivors, dtype=np.int64)]
            out = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            track.results += out.shape[0]
            return out

    def _window_coverage_mask(
        self,
        c: _Chunk,
        window: Rect,
        mode: str,
        stats: "QueryStats | None",
    ) -> np.ndarray:
        """Vectorised Lemma 5 test: is some projection covered by W's?

        ``refavoid`` applies the full four-comparison test; in
        ``refavoid_plus`` the class/tile context removes the comparisons
        that are already decided (end of Section V).
        """
        n = c.ids.shape[0]
        if mode == "refavoid":
            covered_x = (window.xl <= c.xl) & (c.xu <= window.xu)
            covered_y = (window.yl <= c.yl) & (c.yu <= window.yu)
            if stats is not None:
                stats.secondary_filter_comparisons += 4 * n
            return covered_x | covered_y

        # refavoid_plus
        comparisons = 0
        if c.code in _STARTS_INSIDE_X:
            if c.at_x0:
                covered_x = (window.xl <= c.xl) & (c.xu <= window.xu)
                comparisons += 2 * n
            else:
                # W starts before the tile: W.xl < r.xl is already known.
                covered_x = c.xu <= window.xu
                comparisons += n
        else:
            # Class starts before the tile in x while W starts inside it
            # (these classes are only scanned at the query's first column):
            # r.xl < T.xl <= W.xl, so x-coverage is impossible.
            covered_x = np.zeros(n, dtype=bool)
        if c.code in _STARTS_INSIDE_Y:
            if c.at_y0:
                covered_y = (window.yl <= c.yl) & (c.yu <= window.yu)
                comparisons += 2 * n
            else:
                covered_y = c.yu <= window.yu
                comparisons += n
        else:
            covered_y = np.zeros(n, dtype=bool)
        if stats is not None:
            stats.secondary_filter_comparisons += comparisons
        return covered_x | covered_y

    # -- disk queries -------------------------------------------------------------

    def disk(
        self,
        query: DiskQuery,
        mode: str = "refavoid",
        breakdown: "RefinementBreakdown | None" = None,
        stats: "QueryStats | None" = None,
    ) -> np.ndarray:
        """Ids of objects whose exact geometry intersects the disk.

        ``refavoid_plus`` is not applicable to disk queries (the paper
        evaluates Simple and RefAvoid only, Fig. 6).
        """
        if mode not in ("simple", "refavoid"):
            raise InvalidQueryError(
                f"disk refinement supports 'simple' and 'refavoid', got {mode!r}"
            )
        track = breakdown if breakdown is not None else RefinementBreakdown()

        with trace_span("query.disk"):
            # Phase 1 — filtering; the index's own spans nest underneath.
            t0 = time.perf_counter()
            cand = self.index.disk_query(query, stats)
            t1 = time.perf_counter()
            track.filtering_time += t1 - t0
            track.candidates += cand.shape[0]

            certified = np.empty(0, dtype=np.int64)
            to_refine = cand
            with trace_span("refine.secondary"):
                if mode == "refavoid":
                    covered = self._disk_coverage_mask(cand, query, stats)
                    certified = cand[covered]
                    to_refine = cand[~covered]
            t2 = time.perf_counter()
            track.secondary_filter_time += t2 - t1
            track.refinements_avoided += certified.shape[0]
            if stats is not None:
                stats.refinements_avoided += certified.shape[0]

            survivors: list[int] = []
            geometries = self.data.geometries
            with trace_span("refine.exact"):
                for oid in to_refine:
                    oid = int(oid)
                    track.refinement_tests += 1
                    if stats is not None:
                        stats.refinement_tests += 1
                    if geometries is None or geometry_intersects_disk(
                        geometries[oid], query.cx, query.cy, query.radius
                    ):
                        survivors.append(oid)
            t3 = time.perf_counter()
            track.refinement_time += t3 - t2
            track.queries += 1

            out = np.concatenate([certified, np.asarray(survivors, dtype=np.int64)])
            track.results += out.shape[0]
            return out

    # -- exact k nearest neighbours ---------------------------------------------

    def knn(self, cx: float, cy: float, k: int) -> np.ndarray:
        """The ``k`` objects with the smallest *exact geometry* distance.

        Filter-and-refine kNN: (1) take MBR-level nearest candidates (MBR
        distance lower-bounds the exact distance), (2) refine their exact
        distances, (3) close the search with one duplicate-free disk
        query at the k-th exact distance — any object that could still
        beat the current k-th has an MBR within that radius.  Ties break
        by id.
        """
        from repro.geometry.predicates import geometry_distance_to_point
        from repro.core.knn import knn_query

        n = len(self.data)
        if k < 1:
            raise InvalidQueryError(f"k must be >= 1, got {k}")
        geometries = self.data.geometries

        def exact_dists(ids: np.ndarray) -> np.ndarray:
            if geometries is None:
                dx = np.maximum(
                    np.maximum(self.data.xl[ids] - cx, 0.0), cx - self.data.xu[ids]
                )
                dy = np.maximum(
                    np.maximum(self.data.yl[ids] - cy, 0.0), cy - self.data.yu[ids]
                )
                return np.hypot(dx, dy)
            return np.asarray(
                [geometry_distance_to_point(geometries[int(i)], cx, cy) for i in ids]
            )

        if k >= n:
            ids = np.arange(n, dtype=np.int64)
            d = exact_dists(ids)
            return ids[np.lexsort((ids, d))]

        # Phase 1-2: MBR candidates (some headroom), exact distances.
        probe = min(n, max(2 * k, k + 16))
        cand = knn_query(self.index, self.data, cx, cy, probe)
        d = exact_dists(cand)
        order = np.lexsort((cand, d))
        kth = float(d[order[k - 1]])

        # Phase 3: close the boundary — every object whose MBR is within
        # the k-th exact distance could still belong to the answer.
        pool = self.index.disk_query(DiskQuery(cx, cy, kth))
        if pool.shape[0] > cand.shape[0]:
            d = exact_dists(pool)
            order = np.lexsort((pool, d))
            return pool[order[:k]].astype(np.int64)
        return cand[order[:k]].astype(np.int64)

    def _disk_coverage_mask(
        self, cand: np.ndarray, query: DiskQuery, stats: "QueryStats | None"
    ) -> np.ndarray:
        """Vectorised Lemma 5 disk test: >= 2 MBR corners inside the disk."""
        xl = self.data.xl[cand]
        yl = self.data.yl[cand]
        xu = self.data.xu[cand]
        yu = self.data.yu[cand]
        r2 = query.radius * query.radius
        cx, cy = query.cx, query.cy
        inside = (
            (((xl - cx) ** 2 + (yl - cy) ** 2) <= r2).astype(np.int8)
            + (((xu - cx) ** 2 + (yl - cy) ** 2) <= r2)
            + (((xu - cx) ** 2 + (yu - cy) ** 2) <= r2)
            + (((xl - cx) ** 2 + (yu - cy) ** 2) <= r2)
        )
        if stats is not None:
            stats.secondary_filter_comparisons += 4 * cand.shape[0]
        return inside >= 2
