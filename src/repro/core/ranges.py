"""Generic non-rectangular range queries on the two-layer grid (§IV-E).

The paper generalises disk queries to *any* query range: find the tiles
intersecting the range, skip the classes that would produce duplicates
(based on whether the previous tile per dimension also intersects the
range), report fully-covered tiles without verification and verify
rectangles in partially-covered tiles.

This module implements that recipe for any **convex** range — convexity
guarantees the per-row tile intervals are contiguous, which both the
class-skipping rule and the canonical-tile test for classes B/D rely on
(the same argument as :meth:`TwoLayerGrid.disk_query`).  Two concrete
ranges are provided:

* :class:`ConvexPolygonRange` — a convex polygon query region;
* :class:`HalfPlaneStripRange` — the intersection of half-planes
  (e.g. "everything north-west of this line within the map"), a common
  analytic region shape.

Disk queries keep their dedicated fast path in
:meth:`TwoLayerGrid.disk_query`; this engine trades some speed for full
generality and exactness (per-rectangle verification calls the range's
own predicate).
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence

import numpy as np

from repro.errors import InvalidQueryError
from repro.geometry.mbr import Rect
from repro.geometry.polygon import Polygon
from repro.grid.base import CLASS_A, CLASS_B, CLASS_C, CLASS_D
from repro.core.two_layer import TwoLayerGrid
from repro.stats import QueryStats

__all__ = [
    "ConvexRange",
    "ConvexPolygonRange",
    "HalfPlaneStripRange",
    "convex_range_query",
]

_EMPTY_IDS = np.empty(0, dtype=np.int64)


class ConvexRange(Protocol):
    """What the generic evaluator needs from a convex query range."""

    def bounding_box(self) -> Rect:
        """A rectangle containing the whole range."""

    def classify_rect(self, rect: Rect) -> int:
        """-1 if ``rect`` is disjoint from the range, 1 if fully covered
        by it, 0 if partially overlapping (used per tile)."""

    def intersects_rects(
        self,
        xl: np.ndarray,
        yl: np.ndarray,
        xu: np.ndarray,
        yu: np.ndarray,
    ) -> np.ndarray:
        """Boolean mask: which of the given MBRs intersect the range."""


class ConvexPolygonRange:
    """A convex-polygon query range.

    Vertices may be given in either orientation; convexity is validated
    (the two-layer evaluation relies on it for duplicate avoidance).
    """

    def __init__(self, vertices: "Sequence[tuple[float, float]]"):
        self.polygon = Polygon(vertices)
        if not self._is_convex():
            raise InvalidQueryError(
                "ConvexPolygonRange requires a convex polygon; use multiple "
                "convex pieces for concave regions"
            )

    def _is_convex(self) -> bool:
        pts = self.polygon.vertices
        n = len(pts)
        sign = 0
        for i in range(n):
            ax, ay = pts[i]
            bx, by = pts[(i + 1) % n]
            cx, cy = pts[(i + 2) % n]
            cross = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
            if abs(cross) < 1e-15:
                continue
            s = 1 if cross > 0 else -1
            if sign == 0:
                sign = s
            elif s != sign:
                return False
        return True

    def bounding_box(self) -> Rect:
        return self.polygon.mbr()

    def classify_rect(self, rect: Rect) -> int:
        if not self.polygon.intersects_rect(rect):
            return -1
        # Convexity: all four corners inside <=> rect fully covered.
        if all(self.polygon.contains_point(x, y) for x, y in rect.corners()):
            return 1
        return 0

    def intersects_rects(
        self,
        xl: np.ndarray,
        yl: np.ndarray,
        xu: np.ndarray,
        yu: np.ndarray,
    ) -> np.ndarray:
        out = np.empty(xl.shape[0], dtype=bool)
        for i in range(xl.shape[0]):
            out[i] = self.polygon.intersects_rect(
                Rect(float(xl[i]), float(yl[i]), float(xu[i]), float(yu[i]))
            )
        return out


class HalfPlaneStripRange:
    """Intersection of half-planes ``a*x + b*y <= c``, clipped to a box.

    A flexible convex region for analytic queries ("south of this road,
    west of this meridian").  The clip box bounds the otherwise unbounded
    intersection so a bounding box exists.
    """

    def __init__(
        self,
        half_planes: "Iterable[tuple[float, float, float]]",
        clip: "Rect | None" = None,
    ):
        self.half_planes = [(float(a), float(b), float(c)) for a, b, c in half_planes]
        if not self.half_planes:
            raise InvalidQueryError("need at least one half-plane")
        self.clip = clip if clip is not None else Rect(0.0, 0.0, 1.0, 1.0)

    def bounding_box(self) -> Rect:
        return self.clip

    def _corners_inside(self, rect: Rect) -> int:
        count = 0
        for x, y in rect.corners():
            if all(a * x + b * y <= c + 1e-12 for a, b, c in self.half_planes):
                count += 1
        return count

    def classify_rect(self, rect: Rect) -> int:
        clipped = rect.intersection(self.clip)
        if clipped is None:
            return -1
        inside = self._corners_inside(clipped)
        if inside == 4:
            return 1
        if inside > 0:
            return 0
        # No corner inside: for an intersection of half-planes the region
        # is convex, but it may still poke through an edge of the
        # rectangle.  Conservative: test the rectangle against each
        # half-plane; if the rect is entirely outside any half-plane it
        # is disjoint, otherwise treat as partial (verification filters).
        for a, b, c in self.half_planes:
            best = min(a * x + b * y for x, y in clipped.corners())
            if best > c + 1e-12:
                return -1
        return 0

    def intersects_rects(
        self,
        xl: np.ndarray,
        yl: np.ndarray,
        xu: np.ndarray,
        yu: np.ndarray,
    ) -> np.ndarray:
        # A rect intersects the convex region iff, clipped to the box, it
        # is not fully outside any half-plane AND the region's feasible
        # point search succeeds.  For the shapes used here (axis-aligned
        # clip + half-planes) the per-half-plane min test is exact when
        # the region is full-dimensional; a final corner check firms up
        # boundary cases.
        n = xl.shape[0]
        mask = np.ones(n, dtype=bool)
        cxl = np.maximum(xl, self.clip.xl)
        cyl = np.maximum(yl, self.clip.yl)
        cxu = np.minimum(xu, self.clip.xu)
        cyu = np.minimum(yu, self.clip.yu)
        mask &= (cxl <= cxu) & (cyl <= cyu)
        for a, b, c in self.half_planes:
            # Minimum of a*x+b*y over the clipped rect.
            min_val = (
                np.where(a >= 0, a * cxl, a * cxu)
                + np.where(b >= 0, b * cyl, b * cyu)
            )
            mask &= min_val <= c + 1e-12
        return mask


def convex_range_query(
    index: TwoLayerGrid,
    query: ConvexRange,
    stats: "QueryStats | None" = None,
) -> np.ndarray:
    """Ids of all indexed MBRs intersecting a convex range — no duplicates.

    The §IV-E recipe over any convex range: per-row contiguous tile
    intervals, class skipping via previous-tile membership, covered-tile
    fast path, and the canonical-tile test for classes B/D.
    """
    if len(index) == 0:
        return _EMPTY_IDS
    grid = index.grid
    bbox = query.bounding_box()
    ix0, ix1, iy0, iy1 = grid.tile_range_for_window(bbox)

    # Per-row contiguous span of intersecting tiles + coverage flags.
    row_span: dict[int, tuple[int, int]] = {}
    coverage: dict[tuple[int, int], int] = {}
    for iy in range(iy0, iy1 + 1):
        lo = None
        hi = None
        for ix in range(ix0, ix1 + 1):
            kind = query.classify_rect(grid.tile_rect(ix, iy))
            if kind >= 0:
                coverage[(ix, iy)] = kind
                if lo is None:
                    lo = ix
                hi = ix
        if lo is not None:
            row_span[iy] = (lo, hi)  # type: ignore[assignment]

    pieces: list[np.ndarray] = []
    for iy, (lx, rx) in row_span.items():
        base = iy * grid.nx
        prev_row = row_span.get(iy - 1)
        for ix in range(lx, rx + 1):
            tile_id = base + ix
            if not index._tile_has_rows(tile_id):
                continue
            if stats is not None:
                stats.partitions_visited += 1
            prev_x_in = ix > lx
            prev_y_in = prev_row is not None and prev_row[0] <= ix <= prev_row[1]
            codes = [CLASS_A]
            if not prev_y_in:
                codes.append(CLASS_B)
            if not prev_x_in:
                codes.append(CLASS_C)
            if not prev_x_in and not prev_y_in:
                codes.append(CLASS_D)
            covered = coverage[(ix, iy)] == 1
            for code in codes:
                cols = index._partition_columns(tile_id, code)
                if cols is None:
                    continue
                xl, yl, xu, yu, ids = cols
                if ids.shape[0] == 0:
                    continue
                if stats is not None:
                    stats.rects_scanned += ids.shape[0]
                if covered:
                    qual = np.ones(ids.shape[0], dtype=bool)
                else:
                    qual = query.intersects_rects(xl, yl, xu, yu)
                if code in (CLASS_B, CLASS_D):
                    qual &= index._canonical_keep(xl, yl, xu, iy, row_span, stats)
                pieces.append(ids[qual])
    if not pieces:
        return _EMPTY_IDS
    return np.concatenate(pieces)
