"""Batch query processing — Section VI.

Two strategies for evaluating a large batch of window queries:

* **queries-based** — evaluate every query independently, in submission
  order.  Simple, but cache-agnostic: each query touches many tiles
  scattered across memory.
* **tiles-based** — two steps: (1) for every query, accumulate one
  *subtask* per overlapped non-empty tile; (2) sweep the tiles once, at
  each tile executing all of its subtasks back-to-back.  The tile's
  secondary partitions stay hot in cache while every query that needs
  them is served, which is what makes this strategy scale with data/query
  density (Fig. 10) and with parallelism (Fig. 11).

Both return per-query results and are exactly equivalent in output.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.datasets.queries import DiskQuery
from repro.geometry.mbr import Rect
from repro.core.selection import plan_tile
from repro.core.two_layer import TwoLayerGrid
from repro.stats import QueryStats

__all__ = [
    "evaluate_queries_based",
    "evaluate_tiles_based",
    "evaluate_disk_queries_based",
    "evaluate_disk_tiles_based",
    "BATCH_METHODS",
]

BATCH_METHODS = ("queries", "tiles")

_EMPTY_IDS = np.empty(0, dtype=np.int64)


def evaluate_queries_based(
    index: Any,
    windows: Sequence[Rect],
    stats: "QueryStats | None" = None,
) -> list[np.ndarray]:
    """Evaluate a batch query-by-query (works with any index)."""
    return [index.window_query(w, stats) for w in windows]


def evaluate_tiles_based(
    index: TwoLayerGrid,
    windows: Sequence[Rect],
    stats: "QueryStats | None" = None,
) -> list[np.ndarray]:
    """Evaluate a batch tile-by-tile over a two-layer grid.

    Step 1 computes each query's tile range (O(1) each) and appends the
    query to every overlapped *non-empty* tile's subtask list.  Step 2
    visits the tiles once, in id order, draining each tile's subtasks
    with :meth:`TwoLayerGrid._scan_tile_window`.
    """
    grid = index.grid
    ranges = [grid.tile_range_for_window(w) for w in windows]
    subtasks: dict[int, list[int]] = {}
    for qi, (ix0, ix1, iy0, iy1) in enumerate(ranges):
        for iy in range(iy0, iy1 + 1):
            base = iy * grid.nx
            for ix in range(ix0, ix1 + 1):
                tile_id = base + ix
                if tile_id in subtasks or index._tile_has_rows(tile_id):
                    subtasks.setdefault(tile_id, []).append(qi)

    pieces: list[list[np.ndarray]] = [[] for _ in windows]
    for tile_id in sorted(subtasks):
        ix, iy = grid.tile_coords(tile_id)
        for qi in subtasks[tile_id]:
            ix0, ix1, iy0, iy1 = ranges[qi]
            plan = plan_tile(ix, iy, ix0, ix1, iy0, iy1)
            index._scan_tile_window(tile_id, windows[qi], plan, pieces[qi], stats)
    return [
        np.concatenate(parts) if parts else _EMPTY_IDS for parts in pieces
    ]


def evaluate_disk_queries_based(
    index: Any,
    queries: Sequence[DiskQuery],
    stats: "QueryStats | None" = None,
) -> list[np.ndarray]:
    """Evaluate a disk-query batch query-by-query (any index)."""
    return [index.disk_query(q, stats) for q in queries]


def evaluate_disk_tiles_based(
    index: TwoLayerGrid,
    queries: Sequence[DiskQuery],
    stats: "QueryStats | None" = None,
) -> list[np.ndarray]:
    """Evaluate a disk-query batch tile-by-tile over a two-layer grid.

    Step 1 computes each query's §IV-E plan (per-row spans, scanned
    classes and coverage per tile); step 2 sweeps the tiles in id order,
    draining every query's job for that tile while its secondary
    partitions are hot.
    """
    plans = [index._disk_plan(q) for q in queries]
    subtasks: dict[int, list[tuple[int, tuple[int, ...], bool, int]]] = {}
    for qi, (_row_span, jobs) in enumerate(plans):
        for tile_id, codes, covered, iy in jobs:
            if tile_id in subtasks or index._tile_has_rows(tile_id):
                subtasks.setdefault(tile_id, []).append((qi, codes, covered, iy))

    pieces: list[list[np.ndarray]] = [[] for _ in queries]
    for tile_id in sorted(subtasks):
        for qi, codes, covered, iy in subtasks[tile_id]:
            index._scan_tile_disk(
                tile_id,
                queries[qi],
                codes,
                covered,
                iy,
                plans[qi][0],
                pieces[qi],
                stats,
            )
    return [
        np.concatenate(parts) if parts else _EMPTY_IDS for parts in pieces
    ]
