"""Decomposition storage model (DSM) tables — Section IV-C.

For 2-layer⁺, every secondary partition ``T^X`` additionally stores its
rectangles column-decomposed: sorted tables ``L_xl, L_xu, L_yl, L_yu`` of
``(coordinate, id)`` pairs.  A tile needing a single comparison per
Lemma 3/4 is then answered with one binary search — the qualifying prefix
or suffix of the sorted table is reported *without any per-rectangle
comparison*.

Not every class needs all four tables (Table II): class D rectangles, for
example, can only ever face the comparisons ``r.xu >= W.xl`` and
``r.yu >= W.yl``, so only ``L_xu`` and ``L_yu`` are kept:

=========  =========================
partition  required decomposed tables
=========  =========================
``T^A``    ``L_xl, L_xu, L_yl, L_yu``
``T^B``    ``L_xl, L_xu, L_yu``
``T^C``    ``L_xu, L_yl, L_yu``
``T^D``    ``L_xu, L_yu``
=========  =========================
"""

from __future__ import annotations

import numpy as np

from repro.grid.base import CLASS_A, CLASS_B, CLASS_C, CLASS_D

__all__ = [
    "COMP_XU_GE",
    "COMP_XL_LE",
    "COMP_YU_GE",
    "COMP_YL_LE",
    "REQUIRED_TABLES",
    "DecomposedTables",
]

#: comparison identifiers; each names the coordinate it binds.
COMP_XU_GE = "xu_ge"  # r.xu >= W.xl  -> suffix of L_xu
COMP_XL_LE = "xl_le"  # r.xl <= W.xu  -> prefix of L_xl
COMP_YU_GE = "yu_ge"  # r.yu >= W.yl  -> suffix of L_yu
COMP_YL_LE = "yl_le"  # r.yl <= W.yu  -> prefix of L_yl

#: Table II — which decomposed tables each class stores.
REQUIRED_TABLES: dict[int, tuple[str, ...]] = {
    CLASS_A: (COMP_XL_LE, COMP_XU_GE, COMP_YL_LE, COMP_YU_GE),
    CLASS_B: (COMP_XL_LE, COMP_XU_GE, COMP_YU_GE),
    CLASS_C: (COMP_XU_GE, COMP_YL_LE, COMP_YU_GE),
    CLASS_D: (COMP_XU_GE, COMP_YU_GE),
}

#: maps a comparison to (source column index, sort ascending prefix?).
#: columns() order is (xl, yl, xu, yu, ids).
_SOURCE_COLUMN = {
    COMP_XL_LE: 0,
    COMP_YL_LE: 1,
    COMP_XU_GE: 2,
    COMP_YU_GE: 3,
}


class DecomposedTables:
    """The DSM tables of one secondary partition (one tile, one class)."""

    __slots__ = ("_vals", "_ids", "n")

    def __init__(
        self,
        xl: np.ndarray,
        yl: np.ndarray,
        xu: np.ndarray,
        yu: np.ndarray,
        ids: np.ndarray,
        code: int,
    ):
        columns = (xl, yl, xu, yu)
        self.n = int(ids.shape[0])
        self._vals: dict[str, np.ndarray] = {}
        self._ids: dict[str, np.ndarray] = {}
        for comp in REQUIRED_TABLES[code]:
            source = columns[_SOURCE_COLUMN[comp]]
            order = np.argsort(source, kind="stable")
            self._vals[comp] = source[order]
            self._ids[comp] = ids[order]

    @classmethod
    def from_sorted(
        cls,
        code: int,
        n: int,
        tables: "dict[str, tuple[np.ndarray, np.ndarray]]",
    ) -> "DecomposedTables":
        """Adopt pre-sorted ``comp -> (vals, ids)`` tables without argsort.

        The columnar container persists per-class sort orders (the
        ziggypy-style StartSort/EndSort components), so a loaded 2-layer⁺
        gathers each partition's tables with one slice per comparison —
        no O(n log n) rebuild.  The caller vouches that each table is
        ascending in ``vals`` and covers :data:`REQUIRED_TABLES` of
        ``code``.
        """
        self = cls.__new__(cls)
        self.n = n
        self._vals = {}
        self._ids = {}
        for comp in REQUIRED_TABLES[code]:
            vals, ids = tables[comp]
            self._vals[comp] = vals
            self._ids[comp] = ids
        return self

    @property
    def nbytes(self) -> int:
        return sum(v.nbytes for v in self._vals.values()) + sum(
            i.nbytes for i in self._ids.values()
        )

    def has_table(self, comp: str) -> bool:
        return comp in self._vals

    def search(self, comp: str, bound: float) -> np.ndarray:
        """Ids satisfying one comparison, via a single binary search.

        For ``*_le`` comparisons the qualifying rows are the prefix of the
        ascending table with value <= bound; for ``*_ge`` comparisons, the
        suffix with value >= bound.  No per-row comparison is executed.
        """
        vals = self._vals[comp]
        ids = self._ids[comp]
        if comp in (COMP_XL_LE, COMP_YL_LE):
            return ids[: vals.searchsorted(bound, side="right")]
        return ids[vals.searchsorted(bound, side="left") :]
