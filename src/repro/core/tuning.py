"""Grid granularity auto-tuning.

Fig. 7 shows throughput is flat over a wide range of granularities, so
tuning "is not crucial to query performance" — but a library still needs
a sensible default.  Two forces bound the choice:

* **occupancy** — tiles should hold enough entries that per-tile fixed
  costs amortise: ``partitions <= sqrt(n / target_per_tile)``;
* **replication** — tiles much smaller than the objects replicate every
  object into many tiles: tile extent should stay a few times the
  average object extent.

:func:`suggest_partitions` takes the minimum of the two bounds, clamped
to a sane range; datasets produced by this repo's generators land inside
Fig. 7's plateau.
"""

from __future__ import annotations

import math

from repro.datasets.dataset import RectDataset
from repro.errors import DatasetError

__all__ = ["suggest_partitions", "TARGET_ENTRIES_PER_TILE"]

#: aim for roughly this many entries per non-empty tile.
TARGET_ENTRIES_PER_TILE = 48

#: keep tiles at least this many times the average object extent.
_MIN_TILE_TO_OBJECT_RATIO = 4.0

_MIN_PARTITIONS = 1
_MAX_PARTITIONS = 4096


def suggest_partitions(
    data: RectDataset,
    target_per_tile: int = TARGET_ENTRIES_PER_TILE,
    domain_extent: float = 1.0,
) -> int:
    """A good default ``partitions_per_dim`` for a square grid over ``data``.

    Raises :class:`DatasetError` on an empty dataset (there is nothing to
    size the grid for — any granularity works, so the caller should pick
    explicitly).
    """
    n = len(data)
    if n == 0:
        raise DatasetError("cannot suggest a granularity for an empty dataset")
    if target_per_tile < 1:
        raise DatasetError(f"target_per_tile must be >= 1, got {target_per_tile}")

    occupancy_bound = math.sqrt(n / target_per_tile)

    avg_w, avg_h = data.average_extents()
    avg_extent = max(avg_w, avg_h)
    if avg_extent > 0:
        replication_bound = domain_extent / (avg_extent * _MIN_TILE_TO_OBJECT_RATIO)
    else:
        replication_bound = float("inf")  # point data never replicates

    suggestion = int(max(min(occupancy_bound, replication_bound), 1.0))
    return min(max(suggestion, _MIN_PARTITIONS), _MAX_PARTITIONS)
