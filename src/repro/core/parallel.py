"""Parallel batch query processing — Sections VI and VII-C.

The paper parallelises with OpenMP threads on a 40-hyperthread Xeon; in
CPython the GIL rules out thread-level speedup for index code, so this
module uses *forked worker processes* instead (documented substitution,
see DESIGN.md).  The two strategies mirror Section VI:

* **queries-based** — the batch's queries are dealt to workers round-robin
  style; every worker evaluates its queries independently against the
  (copy-on-write shared) index.
* **tiles-based** — the per-tile subtasks are computed once, tiles are
  sharded across workers, and each worker sweeps only its own tiles.  A
  worker therefore touches a bounded working set, the process-level
  analogue of the cache-consciousness argument, and no two workers ever
  scan the same tile.

Two entry points:

* :func:`parallel_window_queries` — one-shot: forks a pool, runs the
  batch, tears the pool down.  Convenient, but pool startup is part of
  the call.
* :class:`ParallelBatchEvaluator` — a persistent worker pool (the
  process analogue of OpenMP's thread team, which exists before the
  timed region in the paper's experiments).  Use this for measuring
  speedup curves and for services running many batches.

Both return the per-query *result counts* (shipping full id arrays across
process boundaries would measure pickling, not query evaluation; the
paper's throughput numbers likewise count results without materialising
them to a client).  ``workers=1`` runs inline, providing the speedup-1
baseline.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Sequence

import numpy as np

from repro.errors import InvalidQueryError, ParallelExecutionError
from repro.geometry.mbr import Rect
from repro.core.batch import evaluate_queries_based, evaluate_tiles_based
from repro.core.selection import plan_tile
from repro.core.two_layer import TwoLayerGrid

__all__ = [
    "parallel_window_queries",
    "ParallelBatchEvaluator",
    "PARALLEL_METHODS",
    "available_workers",
]

PARALLEL_METHODS = ("queries", "tiles")

# Worker-side state, populated by the pool initializer after fork (the
# index is inherited copy-on-write; nothing index-sized is pickled).
_STATE: dict = {}


def available_workers() -> int:
    """Workers usable on this machine (like the paper's thread counts)."""
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except AttributeError:  # non-Linux
        return max(os.cpu_count() or 1, 1)


def _init_worker(index) -> None:
    _STATE["index"] = index


def _run_query_shard(payload) -> list[tuple[int, int]]:
    """queries-based worker: evaluate whole queries from the payload."""
    index = _STATE["index"]
    return [
        (qi, int(index.window_query(window).shape[0]))
        for qi, window in payload
    ]


def _run_tile_shard(payload) -> list[tuple[int, int]]:
    """tiles-based worker: drain the subtasks of a shard of tiles.

    ``payload`` is ``(windows, ranges, shard)`` where ``shard`` is a list
    of ``(tile_id, [query indices])``.
    """
    windows, ranges, shard = payload
    index = _STATE["index"]
    grid = index.grid
    counts: dict[int, int] = {}
    for tile_id, q_list in shard:
        ix, iy = grid.tile_coords(tile_id)
        for qi in q_list:
            ix0, ix1, iy0, iy1 = ranges[qi]
            plan = plan_tile(ix, iy, ix0, ix1, iy0, iy1)
            pieces: list[np.ndarray] = []
            index._scan_tile_window(tile_id, windows[qi], plan, pieces)
            got = sum(p.shape[0] for p in pieces)
            if got:
                counts[qi] = counts.get(qi, 0) + got
    return list(counts.items())


class ParallelBatchEvaluator:
    """A persistent pool of forked workers sharing one two-layer index.

    The pool is created once (workers inherit the index copy-on-write)
    and then evaluates any number of batches; per-batch work ships only
    the query windows.  Use as a context manager::

        with ParallelBatchEvaluator(index, workers=4) as pool:
            counts = pool.run(windows, method="tiles")
    """

    def __init__(self, index: TwoLayerGrid, workers: int = 2):
        if workers < 1:
            raise InvalidQueryError(f"workers must be >= 1, got {workers}")
        self.index = index
        self.workers = workers
        self._pool = None
        self._broken = False
        if workers > 1:
            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(
                processes=workers, initializer=_init_worker, initargs=(index,)
            )

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            if self._broken:
                self._pool.terminate()
            else:
                self._pool.close()
            self._pool.join()
            self._pool = None

    def _map_or_raise(self, fn, payloads) -> list:
        """``pool.map`` that fails loudly when a worker dies mid-batch.

        ``multiprocessing.Pool`` silently respawns a killed worker and
        leaves its in-flight task unfinished, so a plain ``map`` would
        hang forever (or surface a bare ``BrokenPipeError``).  The wait
        loop watches the pool's worker set; any death mid-batch raises
        :class:`~repro.errors.ParallelExecutionError` and marks the
        evaluator broken (terminated on :meth:`close`).
        """
        pool = self._pool
        workers = getattr(pool, "_pool", None)  # CPython Pool internals
        baseline = (
            {w.pid for w in workers} if workers is not None else None
        )
        result = pool.map_async(fn, payloads)
        while not result.ready():
            result.wait(0.05)
            if result.ready() or baseline is None:
                break
            dead = any(not w.is_alive() for w in workers)
            if dead or {w.pid for w in workers} != baseline:
                self._broken = True
                self.close()
                raise ParallelExecutionError(
                    "a parallel batch worker died mid-batch (killed or "
                    "crashed); the pool was terminated — results for "
                    "this batch are lost"
                )
        try:
            return result.get()
        except ParallelExecutionError:
            raise
        except Exception as exc:
            self._broken = True
            self.close()
            raise ParallelExecutionError(
                f"parallel batch failed in a worker: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    def __enter__(self) -> "ParallelBatchEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- evaluation ----------------------------------------------------------

    def run(self, windows: Sequence[Rect], method: str = "queries") -> np.ndarray:
        """Evaluate a batch; returns per-query result counts."""
        if method not in PARALLEL_METHODS:
            raise InvalidQueryError(
                f"unknown parallel method {method!r}; expected one of "
                f"{PARALLEL_METHODS}"
            )
        if self._broken:
            raise ParallelExecutionError(
                "this evaluator's worker pool is broken (a worker died); "
                "create a new ParallelBatchEvaluator"
            )
        windows = list(windows)
        counts = np.zeros(len(windows), dtype=np.int64)
        if not windows:
            return counts
        if self._pool is None:
            evaluator = (
                evaluate_queries_based if method == "queries" else evaluate_tiles_based
            )
            for qi, ids in enumerate(evaluator(self.index, windows)):
                counts[qi] = ids.shape[0]
            return counts

        if method == "queries":
            payloads = [
                [(qi, windows[qi]) for qi in range(w, len(windows), self.workers)]
                for w in range(self.workers)
            ]
            run = _run_query_shard
        else:
            grid = self.index.grid
            ranges = [grid.tile_range_for_window(w) for w in windows]
            index = self.index
            subtasks: dict[int, list[int]] = {}
            for qi, (ix0, ix1, iy0, iy1) in enumerate(ranges):
                for iy in range(iy0, iy1 + 1):
                    base = iy * grid.nx
                    for ix in range(ix0, ix1 + 1):
                        tile_id = base + ix
                        if tile_id in subtasks or index._tile_has_rows(tile_id):
                            subtasks.setdefault(tile_id, []).append(qi)
            items = sorted(subtasks.items())
            payloads = [
                (windows, ranges, items[w :: self.workers])
                for w in range(self.workers)
            ]
            run = _run_tile_shard

        for shard_result in self._map_or_raise(run, payloads):
            for qi, cnt in shard_result:
                counts[qi] += cnt
        return counts


def parallel_window_queries(
    index: TwoLayerGrid,
    windows: Sequence[Rect],
    workers: int = 2,
    method: str = "queries",
) -> np.ndarray:
    """One-shot parallel batch evaluation; returns per-query counts.

    ``method`` selects queries-based or tiles-based sharding (Section VI).
    ``workers=1`` evaluates inline (no processes) — the speedup baseline.
    Pool startup/teardown is included; measure speedup curves with
    :class:`ParallelBatchEvaluator` instead.
    """
    with ParallelBatchEvaluator(index, workers) as pool:
        return pool.run(windows, method)
