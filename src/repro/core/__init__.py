"""The paper's contribution: two-layer partitioning and everything on it.

* :mod:`repro.core.selection` — Lemmas 1-4 as per-tile evaluation plans.
* :class:`TwoLayerGrid` — the 2-layer index (Sections III-IV).
* :class:`TwoLayerPlusGrid` — 2-layer⁺ with DSM decomposed tables (IV-C).
* :class:`NDimTwoLayerGrid` — the m-dimensional generalisation (IV-D).
* :class:`RefinementEngine` — Simple / RefAvoid / RefAvoid⁺ refinement (V).
* :mod:`repro.core.batch` / :mod:`repro.core.parallel` — queries-based and
  tiles-based batch evaluation, sequential and parallel (VI).
* :mod:`repro.core.join` / :mod:`repro.core.knn` — spatial joins and kNN
  queries via the same duplicate-avoidance machinery (the paper's stated
  future work, implemented as extensions).
* :mod:`repro.core.ranges` — §IV-E generalised: duplicate-free queries
  over arbitrary convex ranges (convex polygons, half-plane strips).
"""

from repro.core.batch import (
    BATCH_METHODS,
    evaluate_disk_queries_based,
    evaluate_disk_tiles_based,
    evaluate_queries_based,
    evaluate_tiles_based,
)
from repro.core.decomposed import REQUIRED_TABLES, DecomposedTables
from repro.core.estimate import SelectivityEstimator
from repro.core.join import (
    ALLOWED_CLASS_COMBOS,
    JOIN_ALGORITHMS,
    brute_force_join,
    one_layer_spatial_join,
    refine_join_pairs,
    two_layer_spatial_join,
)
from repro.core.knn import knn_query
from repro.core.ndim import NDimTwoLayerGrid
from repro.core.persistence import load_index, save_index
from repro.core.ranges import (
    ConvexPolygonRange,
    HalfPlaneStripRange,
    convex_range_query,
)
from repro.core.parallel import (
    PARALLEL_METHODS,
    ParallelBatchEvaluator,
    available_workers,
    parallel_window_queries,
)
from repro.core.refinement import (
    REFINEMENT_MODES,
    RefinementBreakdown,
    RefinementEngine,
)
from repro.core.selection import ClassPlan, TilePlan, plan_for_region, plan_tile
from repro.core.tuning import TARGET_ENTRIES_PER_TILE, suggest_partitions
from repro.core.two_layer import TwoLayerGrid
from repro.core.two_layer_plus import (
    MULTI_COMPARISON_STRATEGIES,
    TwoLayerPlusGrid,
)

__all__ = [
    "TwoLayerGrid",
    "TwoLayerPlusGrid",
    "MULTI_COMPARISON_STRATEGIES",
    "NDimTwoLayerGrid",
    "RefinementEngine",
    "RefinementBreakdown",
    "REFINEMENT_MODES",
    "DecomposedTables",
    "REQUIRED_TABLES",
    "ClassPlan",
    "TilePlan",
    "plan_tile",
    "evaluate_queries_based",
    "evaluate_tiles_based",
    "evaluate_disk_queries_based",
    "evaluate_disk_tiles_based",
    "BATCH_METHODS",
    "parallel_window_queries",
    "ParallelBatchEvaluator",
    "PARALLEL_METHODS",
    "available_workers",
    "two_layer_spatial_join",
    "one_layer_spatial_join",
    "brute_force_join",
    "refine_join_pairs",
    "ALLOWED_CLASS_COMBOS",
    "JOIN_ALGORITHMS",
    "knn_query",
    "convex_range_query",
    "ConvexPolygonRange",
    "HalfPlaneStripRange",
    "save_index",
    "load_index",
    "SelectivityEstimator",
    "suggest_partitions",
    "TARGET_ENTRIES_PER_TILE",
    "plan_for_region",
]
