"""kd-tree SOP indexes: plain (reference-point dedup) and two-layer."""

from repro.kdtree.kdtree import (
    DEFAULT_LEAF_CAPACITY,
    DEFAULT_MAX_DEPTH,
    KDTree,
    TwoLayerKDTree,
)

__all__ = ["KDTree", "TwoLayerKDTree", "DEFAULT_LEAF_CAPACITY", "DEFAULT_MAX_DEPTH"]
