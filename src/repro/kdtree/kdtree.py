"""kd-tree over non-point data — the third SOP family of §II-A.

The paper lists the kd-tree [4] among the hierarchical space-oriented
partitioning indices (with the quad-tree).  Like every SOP structure it
partitions *space* — here by alternating median splits — so non-point
objects replicate into every leaf region they intersect, and queries
must deduplicate.  This module provides

* :class:`KDTree` — replicating kd-tree with reference-point dedup [9];
* :class:`TwoLayerKDTree` — the same tree with each leaf's entries
  divided into the four classes of Section III and queries planned via
  :func:`repro.core.selection.plan_for_region`, demonstrating once more
  that the paper's secondary partitioning applies to *any* SOP index.

Splits are median-of-extent: a leaf over capacity splits its region at
the median start coordinate of its entries, alternating x and y by
depth, which adapts to skew better than the quad-tree's rigid quarters.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.errors import InvalidGridError
from repro.geometry.mbr import Rect
from repro.grid.storage import TileTable
from repro.core.selection import plan_for_region
from repro.grid.base import CLASS_NAMES
from repro.obs.tracing import span as trace_span
from repro.stats import QueryStats

__all__ = ["KDTree", "TwoLayerKDTree", "DEFAULT_LEAF_CAPACITY", "DEFAULT_MAX_DEPTH"]

DEFAULT_LEAF_CAPACITY = 256
DEFAULT_MAX_DEPTH = 24

_EMPTY_IDS = np.empty(0, dtype=np.int64)


class _Node:
    """A kd-tree node: a leaf with entries or a single split."""

    __slots__ = (
        "xl", "yl", "xu", "yu", "depth", "axis", "split",
        "low", "high", "table", "tables", "size",
    )

    def __init__(self, xl: float, yl: float, xu: float, yu: float, depth: int):
        self.xl = xl
        self.yl = yl
        self.xu = xu
        self.yu = yu
        self.depth = depth
        self.axis = -1          # -1 while leaf; 0 = x split, 1 = y split
        self.split = 0.0
        self.low: "_Node | None" = None
        self.high: "_Node | None" = None
        self.table: "TileTable | None" = TileTable()      # plain variant
        self.tables: "list[TileTable | None] | None" = None  # 2-layer variant
        self.size = 0

    @property
    def is_leaf(self) -> bool:
        return self.axis < 0


class _BaseKDTree:
    """Shared construction/traversal for the plain and two-layer trees."""

    #: set by subclasses: whether leaves carry class-partitioned tables.
    _two_layer = False

    def __init__(
        self,
        domain: "Rect | None" = None,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ):
        if leaf_capacity < 1:
            raise InvalidGridError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
        if max_depth < 0:
            raise InvalidGridError(f"max_depth must be >= 0, got {max_depth}")
        self.domain = domain if domain is not None else Rect(0.0, 0.0, 1.0, 1.0)
        self.leaf_capacity = leaf_capacity
        self.max_depth = max_depth
        self._root = _Node(
            self.domain.xl, self.domain.yl, self.domain.xu, self.domain.yu, 0
        )
        if self._two_layer:
            self._root.table = None
            self._root.tables = [None, None, None, None]
        self._n_objects = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        data: RectDataset,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
        domain: "Rect | None" = None,
    ):
        tree = cls(domain, leaf_capacity, max_depth)
        for i in range(len(data)):
            tree._insert_entry(
                float(data.xl[i]),
                float(data.yl[i]),
                float(data.xu[i]),
                float(data.yu[i]),
                i,
            )
        tree._n_objects = len(data)
        return tree

    def insert(self, rect: Rect, obj_id: "int | None" = None) -> int:
        if obj_id is None:
            obj_id = self._n_objects
        self._n_objects = max(self._n_objects, obj_id + 1)
        self._insert_entry(rect.xl, rect.yl, rect.xu, rect.yu, obj_id)
        return obj_id

    def _region_admits(
        self, node: _Node, xl: float, yl: float, xu: float, yu: float
    ) -> bool:
        """Half-open region membership, closed at the domain's far edges."""
        if xu < node.xl or yu < node.yl:
            return False
        ok_x = xl < node.xu or (xl <= node.xu and node.xu >= self.domain.xu)
        ok_y = yl < node.yu or (yl <= node.yu and node.yu >= self.domain.yu)
        return ok_x and ok_y

    def _leaf_append(
        self, node: _Node, xl: float, yl: float, xu: float, yu: float, oid: int
    ) -> None:
        if self._two_layer:
            code = 2 * (xl < node.xl) + (yl < node.yl)
            assert node.tables is not None
            table = node.tables[code]
            if table is None:
                table = TileTable()
                node.tables[code] = table
            table.append(xl, yl, xu, yu, oid)
        else:
            assert node.table is not None
            node.table.append(xl, yl, xu, yu, oid)
        node.size += 1

    def _insert_entry(
        self, xl: float, yl: float, xu: float, yu: float, obj_id: int
    ) -> None:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not self._region_admits(node, xl, yl, xu, yu):
                continue
            if node.is_leaf:
                self._leaf_append(node, xl, yl, xu, yu, obj_id)
                if node.size > self.leaf_capacity and node.depth < self.max_depth:
                    self._split(node)
                continue
            stack.append(node.low)   # type: ignore[arg-type]
            stack.append(node.high)  # type: ignore[arg-type]

    def _leaf_entries(self, node: _Node):
        """Yield the (xl, yl, xu, yu, ids) columns of a leaf's tables."""
        if self._two_layer:
            assert node.tables is not None
            for table in node.tables:
                if table is not None:
                    yield table.columns()
        else:
            assert node.table is not None
            yield node.table.columns()

    def _split(self, node: _Node) -> None:
        """Median split on the alternating axis; re-distribute entries."""
        axis = node.depth % 2
        starts: list[float] = []
        for xl, yl, xu, yu, ids in self._leaf_entries(node):
            starts.extend((xl if axis == 0 else yl).tolist())
        split = float(np.median(starts))
        # Degenerate medians (all starts equal, or median on the region
        # border) cannot divide the entries — keep the leaf fat.
        lo_bound = node.xl if axis == 0 else node.yl
        hi_bound = node.xu if axis == 0 else node.yu
        if not (lo_bound < split < hi_bound):
            return
        d = node.depth + 1
        if axis == 0:
            low = _Node(node.xl, node.yl, split, node.yu, d)
            high = _Node(split, node.yl, node.xu, node.yu, d)
        else:
            low = _Node(node.xl, node.yl, node.xu, split, d)
            high = _Node(node.xl, split, node.xu, node.yu, d)
        if self._two_layer:
            for child in (low, high):
                child.table = None
                child.tables = [None, None, None, None]
        entries = [cols for cols in self._leaf_entries(node)]
        node.axis = axis
        node.split = split
        node.low = low
        node.high = high
        node.table = None
        node.tables = None
        node.size = 0
        for xl, yl, xu, yu, ids in entries:
            for k in range(ids.shape[0]):
                exl = float(xl[k])
                eyl = float(yl[k])
                exu = float(xu[k])
                eyu = float(yu[k])
                oid = int(ids[k])
                for child in (low, high):
                    if self._region_admits(child, exl, eyl, exu, eyu):
                        self._leaf_append(child, exl, eyl, exu, eyu, oid)
        for child in (low, high):
            if child.size > self.leaf_capacity and child.depth < self.max_depth:
                self._split(child)

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        return self._n_objects

    @property
    def leaf_count(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                count += 1
            else:
                stack.append(node.low)   # type: ignore[arg-type]
                stack.append(node.high)  # type: ignore[arg-type]
        return count

    @property
    def replica_count(self) -> int:
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                total += node.size
            else:
                stack.append(node.low)   # type: ignore[arg-type]
                stack.append(node.high)  # type: ignore[arg-type]
        return total

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(objects={self._n_objects}, "
            f"leaves={self.leaf_count}, replicas={self.replica_count})"
        )

    def _visible_leaves(self, window: Rect):
        """Leaves whose half-open region is visible to the window."""
        domain = self.domain
        stack = [self._root]
        while stack:
            node = stack.pop()
            visible_x = node.xu > window.xl or (
                node.xu >= domain.xu and node.xu >= window.xl
            )
            visible_y = node.yu > window.yl or (
                node.yu >= domain.yu and node.yu >= window.yl
            )
            if (
                not visible_x
                or not visible_y
                or node.xl > window.xu
                or node.yl > window.yu
            ):
                continue
            if node.is_leaf:
                yield node
            else:
                stack.append(node.low)   # type: ignore[arg-type]
                stack.append(node.high)  # type: ignore[arg-type]

    def explain_partitions(
        self, window: Rect
    ) -> list[tuple[Rect, np.ndarray]]:
        """EXPLAIN introspection: ``(leaf rect, stored ids)`` for every
        non-empty leaf visible to ``window`` (class tables pooled)."""
        out: list[tuple[Rect, np.ndarray]] = []
        for node in self._visible_leaves(window):
            ids = [
                cols[4] for cols in self._leaf_entries(node) if cols[4].shape[0]
            ]
            if ids:
                out.append(
                    (Rect(node.xl, node.yl, node.xu, node.yu), np.concatenate(ids))
                )
        return out


class KDTree(_BaseKDTree):
    """Replicating kd-tree with reference-point duplicate elimination."""

    _two_layer = False

    #: EXPLAIN accounting mode: replication duplicates eliminated by the
    #: reference-point test.
    dedup_strategy = "refpoint"

    def window_query(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        with trace_span("query.window"):
            with trace_span("filter.lookup"):
                leaves = list(self._visible_leaves(window))
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                self._scan_window_leaves(leaves, window, pieces, stats)
            with trace_span("dedup"):
                # Reference-point dedup runs interleaved per leaf during the
                # scan; counted via stats.dedup_checks.
                pass
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def _scan_window_leaves(self, leaves, window, pieces, stats) -> None:
        for node in leaves:
            assert node.table is not None
            xl, yl, xu, yu, ids = node.table.columns()
            if ids.shape[0] == 0:
                continue
            if stats is not None:
                stats.partitions_visited += 1
                stats.rects_scanned += ids.shape[0]
                stats.comparisons += 4 * ids.shape[0]
                stats.visit_class("leaf")
            mask = (
                (xu >= window.xl)
                & (xl <= window.xu)
                & (yu >= window.yl)
                & (yl <= window.yu)
            )
            cand = np.flatnonzero(mask)
            if cand.shape[0] == 0:
                continue
            px = np.maximum(xl[cand], window.xl)
            py = np.maximum(yl[cand], window.yl)
            at_domain_x = node.xu >= self.domain.xu
            at_domain_y = node.yu >= self.domain.yu
            keep = (
                (px >= node.xl)
                & ((px < node.xu) | at_domain_x)
                & (py >= node.yl)
                & ((py < node.yu) | at_domain_y)
            )
            if stats is not None:
                stats.dedup_checks += cand.shape[0]
                stats.duplicates_generated += int(cand.shape[0] - keep.sum())
            pieces.append(ids[cand[keep]])


class TwoLayerKDTree(_BaseKDTree):
    """kd-tree + the paper's secondary partitioning: duplicate avoidance."""

    _two_layer = True

    #: EXPLAIN accounting mode: duplicates avoided by class selection.
    dedup_strategy = "avoid"

    def disk_query(self, query, stats: "QueryStats | None" = None) -> np.ndarray:
        """Disk query: class-planned window over the disk's MBR + distance.

        Same construction as :meth:`TwoLayerQuadTree.disk_query`: class
        selection relative to the disk's bounding window makes each
        candidate unique, and the distance test subsets the candidates.
        Leaves fully inside the disk skip the distance computations.
        """
        with trace_span("query.disk"):
            with trace_span("filter.lookup"):
                window = query.mbr()
                radius = query.radius
                leaves = list(self._visible_leaves(window))
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                self._scan_disk_leaves(leaves, query, window, radius, pieces, stats)
            with trace_span("dedup"):
                pass  # class selection per leaf is duplicate-free
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def _scan_disk_leaves(
        self, leaves, query, window, radius, pieces, stats
    ) -> None:
        from repro.geometry.mbr import max_dist_point_rect

        cx, cy = query.cx, query.cy
        r2 = radius * radius
        for node in leaves:
            assert node.tables is not None
            if stats is not None:
                stats.partitions_visited += 1
            region = Rect(node.xl, node.yl, node.xu, node.yu)
            covered = max_dist_point_rect(cx, cy, region) <= radius
            plan = plan_for_region(
                window.xl, window.yl, window.xu, window.yu,
                node.xl, node.yl, node.xu, node.yu,
            )
            for cp in plan.classes:
                table = node.tables[cp.code]
                if table is None:
                    continue
                xl, yl, xu, yu, ids = table.columns()
                if ids.shape[0] == 0:
                    continue
                if stats is not None:
                    stats.rects_scanned += ids.shape[0]
                    stats.visit_class(CLASS_NAMES[cp.code])
                mask: "np.ndarray | None" = None
                if cp.xu_ge:
                    mask = xu >= window.xl
                if cp.xl_le:
                    m = xl <= window.xu
                    mask = m if mask is None else mask & m
                if cp.yu_ge:
                    m = yu >= window.yl
                    mask = m if mask is None else mask & m
                if cp.yl_le:
                    m = yl <= window.yu
                    mask = m if mask is None else mask & m
                if not covered:
                    dx = np.maximum(np.maximum(xl - cx, 0.0), cx - xu)
                    dy = np.maximum(np.maximum(yl - cy, 0.0), cy - yu)
                    m = dx * dx + dy * dy <= r2
                    mask = m if mask is None else mask & m
                pieces.append(ids if mask is None else ids[mask])

    def window_query(
        self, window: Rect, stats: "QueryStats | None" = None
    ) -> np.ndarray:
        with trace_span("query.window"):
            with trace_span("filter.lookup"):
                leaves = list(self._visible_leaves(window))
            pieces: list[np.ndarray] = []
            with trace_span("filter.scan"):
                self._scan_window_leaves(leaves, window, pieces, stats)
            with trace_span("dedup"):
                pass  # duplicate-free by class selection (no dedup step)
            if not pieces:
                return _EMPTY_IDS
            return np.concatenate(pieces)

    def _scan_window_leaves(self, leaves, window, pieces, stats) -> None:
        for node in leaves:
            assert node.tables is not None
            if stats is not None:
                stats.partitions_visited += 1
            plan = plan_for_region(
                window.xl, window.yl, window.xu, window.yu,
                node.xl, node.yl, node.xu, node.yu,
            )
            for cp in plan.classes:
                table = node.tables[cp.code]
                if table is None:
                    continue
                xl, yl, xu, yu, ids = table.columns()
                if ids.shape[0] == 0:
                    continue
                if stats is not None:
                    stats.rects_scanned += ids.shape[0]
                    stats.comparisons += cp.n_comparisons * ids.shape[0]
                    stats.visit_class(CLASS_NAMES[cp.code])
                mask: "np.ndarray | None" = None
                if cp.xu_ge:
                    mask = xu >= window.xl
                if cp.xl_le:
                    m = xl <= window.xu
                    mask = m if mask is None else mask & m
                if cp.yu_ge:
                    m = yu >= window.yl
                    mask = m if mask is None else mask & m
                if cp.yl_le:
                    m = yl <= window.yu
                    mask = m if mask is None else mask & m
                pieces.append(ids if mask is None else ids[mask])
