"""The ShardWorker process: banded kernels over shared-memory columns.

One worker per shard, spawned by the router.  A worker rebuilds the
full serving state without copying a byte of column data — the packed
CSR base, the dataset columns and the fast-path query matrix are all
read-only views into the router's shm arena — wraps it in a
:class:`~repro.shard.banded.BandedTwoLayerGrid` clamped to its band,
and serves a strictly sequential asyncio loop over a single TCP
connection back to the router:

* **reads** arrive as one ``batch`` envelope per micro-batch, stamped
  with the router's snapshot epoch.  The worker executes against its
  replica of exactly that version (it keeps a ring of recent
  snapshots); a batch stamped *ahead* of the replica (the write that
  produced it is still in flight) is parked and drained as soon as the
  write lands — never executed against an older version, so
  scatter-gather merges are cut at one consistent epoch.  A parked
  batch whose write never arrives fails with a structured error at
  ``stale_after_s`` (the router turns that into a degraded response —
  no hangs).
* **writes** are broadcast by the router to every worker and applied
  inline in arrival order.  Application is deterministic (object ids
  assigned from a counter, delete-misses don't bump the version), so
  every replica independently produces the identical version sequence
  the router's own local store produces — the cross-shard "epoch
  vector" stays uniform without any coordination.

The worker needs no metrics, no telemetry and no public protocol: the
router owns the client edge and already validated every request.  Exit
paths: a ``shutdown`` envelope, EOF from the router (router gone), or
being killed — in all cases the worker only ever ``close()``-es the
arena (the router is the sole unlinker; see :mod:`repro.shard.shm`).
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Any

from repro.analysis import sanitize as _sanitize
from repro.core.batch import evaluate_disk_tiles_based, evaluate_tiles_based
from repro.core.knn import knn_query
from repro.datasets.dataset import RectDataset
from repro.datasets.queries import DiskQuery
from repro.errors import InvalidQueryError, ReproError
from repro.geometry.mbr import Rect
from repro.grid.base import GridPartitioner
from repro.grid.storage import PackedStore
from repro.server.snapshot import Snapshot, SnapshotStore
from repro.shard.banded import BandedTwoLayerGrid
from repro.shard.partition import ShardBand
from repro.shard.shm import attach_arena
from repro.shard.wire import decode_frame, encode_frame

__all__ = ["build_worker_state", "run_worker"]

#: snapshot versions a replica keeps behind its head — a read stamped
#: further back than this (the router would have to lag the broadcast by
#: this many writes) fails structurally instead of answering stale.
_RING_KEEP = 64

#: how long a parked (ahead-of-replica) batch waits for its write.
_STALE_AFTER_S = 5.0


def build_worker_state(
    manifest: dict[str, Any], views: dict[str, Any], shard_id: int
) -> tuple[BandedTwoLayerGrid, RectDataset]:
    """Reconstruct the banded index + dataset from attached shm views."""
    domain = manifest["domain"]
    grid = GridPartitioner(
        manifest["nx"],
        manifest["ny"],
        Rect(domain[0], domain[1], domain[2], domain[3]),
    )
    store = PackedStore(
        4,
        views["offsets"],
        views["xl"],
        views["yl"],
        views["xu"],
        views["yu"],
        views["ids"],
    )
    if _sanitize.enabled():
        _sanitize.check_packed_store(store, "shard.worker.attach")
    band = ShardBand.from_tuple(manifest["bands"][shard_id])
    index = BandedTwoLayerGrid(grid, band, storage="packed")
    index._store = store
    index._n_objects = int(manifest["n_objects"])
    fast_q = views.get("fast_q")
    if fast_q is not None:
        index._fast_q = fast_q
        index._tile_row_bounds = store.offsets[::4].tolist()
    data = RectDataset(
        views["data_xl"], views["data_yl"], views["data_xu"], views["data_yu"]
    )
    return index, data


def _err(rid: int, code: str, message: str) -> dict[str, Any]:
    return {"id": rid, "ok": False, "error": {"code": code, "message": message}}


class _WorkerLoop:
    """Sequential frame processor: reads parked by epoch, writes inline."""

    def __init__(self, index: BandedTwoLayerGrid, data: RectDataset):
        self.store = SnapshotStore(index, data)
        head = self.store.current
        self.ring: dict[int, Snapshot] = {head.version: head}
        #: parked read batches: (frame, monotonic deadline)
        self.parked: list[tuple[dict[str, Any], float]] = []

    # -- reads -------------------------------------------------------------

    def _snapshot_at(self, epoch: int) -> "Snapshot | None":
        head = self.store.current
        if epoch == head.version:
            return head
        return self.ring.get(epoch)

    def try_batch(self, frame: dict[str, Any]) -> "dict[str, Any] | None":
        """Execute a batch envelope, or return None to park it."""
        epoch = frame["epoch"]
        snap = self._snapshot_at(epoch)
        if snap is None:
            if epoch > self.store.current.version:
                return None  # write still in flight; drained on arrival
            return self._fail_batch(
                frame,
                f"epoch {epoch} evicted (replica at "
                f"{self.store.current.version}, ring {_RING_KEEP})",
            )
        return self._run_batch(snap, frame)

    def _fail_batch(self, frame: dict[str, Any], message: str) -> dict[str, Any]:
        return {
            "t": "batch_r",
            "bid": frame["bid"],
            "epoch": self.store.current.version,
            "kernel_ms": 0.0,
            "results": [
                _err(r["id"], "internal", message) for r in frame["reqs"]
            ],
        }

    def _run_batch(self, snap: Snapshot, frame: dict[str, Any]) -> dict[str, Any]:
        t0 = time.perf_counter()
        results: list[dict[str, Any]] = []
        windows: list[Rect] = []
        wmeta: list[tuple[int, bool]] = []
        disks: list[DiskQuery] = []
        dmeta: list[int] = []
        singles: list[dict[str, Any]] = []
        for r in frame["reqs"]:
            verb = r["verb"]
            args = r["args"]
            try:
                if verb == "count" or (
                    verb == "window" and args.get("predicate") == "intersects"
                ):
                    windows.append(
                        Rect(args["xl"], args["yl"], args["xu"], args["yu"])
                    )
                    wmeta.append((r["id"], verb == "count"))
                elif verb == "disk":
                    disks.append(
                        DiskQuery(args["cx"], args["cy"], args["radius"])
                    )
                    dmeta.append(r["id"])
                else:
                    singles.append(r)
            except ReproError as exc:
                results.append(_err(r["id"], "invalid_query", str(exc)))
        if windows:
            try:
                outs = evaluate_tiles_based(snap.index, windows, None)
                for (rid, count_only), ids in zip(wmeta, outs):
                    n = int(ids.shape[0])
                    result = (
                        {"count": n}
                        if count_only
                        else {"ids": ids.tolist(), "count": n}
                    )
                    results.append({"id": rid, "ok": True, "result": result})
            except Exception as exc:
                for rid, _ in wmeta:
                    results.append(_err(rid, "internal", repr(exc)))
        if disks:
            try:
                outs = evaluate_disk_tiles_based(snap.index, disks, None)
                for rid, ids in zip(dmeta, outs):
                    results.append(
                        {
                            "id": rid,
                            "ok": True,
                            "result": {
                                "ids": ids.tolist(),
                                "count": int(ids.shape[0]),
                            },
                        }
                    )
            except Exception as exc:
                for rid in dmeta:
                    results.append(_err(rid, "internal", repr(exc)))
        for r in singles:
            results.append(self._run_single(snap, r))
        return {
            "t": "batch_r",
            "bid": frame["bid"],
            "epoch": snap.version,
            "kernel_ms": round((time.perf_counter() - t0) * 1e3, 3),
            "results": results,
        }

    def _run_single(self, snap: Snapshot, r: dict[str, Any]) -> dict[str, Any]:
        verb = r["verb"]
        args = r["args"]
        try:
            if verb == "window":  # predicate="within" (intersects is batched)
                window = Rect(args["xl"], args["yl"], args["xu"], args["yu"])
                ids = snap.index.window_query_within(window)
                result = {"ids": ids.tolist(), "count": int(ids.shape[0])}
            elif verb == "knn":
                # Global search on this worker's full state: the k-th
                # distance bound is a global property, so knn is routed
                # whole to one worker, never banded.
                ids = knn_query(
                    snap.index.global_view(),
                    snap.data,
                    args["cx"],
                    args["cy"],
                    args["k"],
                )
                result = {"ids": ids.tolist(), "count": int(ids.shape[0])}
            else:
                return _err(r["id"], "internal", f"unroutable verb {verb!r}")
            return {"id": r["id"], "ok": True, "result": result}
        except InvalidQueryError as exc:
            return _err(r["id"], "invalid_query", str(exc))
        except ReproError as exc:
            return _err(r["id"], "internal", str(exc))
        except Exception as exc:
            return _err(r["id"], "internal", repr(exc))

    # -- writes ------------------------------------------------------------

    def apply_write(self, frame: dict[str, Any]) -> dict[str, Any]:
        verb = frame["verb"]
        args = frame["args"]
        try:
            if verb == "insert":
                rect = Rect(args["xl"], args["yl"], args["xu"], args["yu"])
                obj_id, version = self.store.insert(rect)
                result = {"id": obj_id, "snapshot": version}
            else:
                found, version = self.store.delete(args["id"])
                result = {"found": found, "snapshot": version}
        except ReproError as exc:
            return {
                "t": "write_r",
                "seq": frame["seq"],
                "ok": False,
                "version": self.store.current.version,
                "error": {"code": "invalid_query", "message": str(exc)},
            }
        head = self.store.current
        self.ring[head.version] = head
        for v in [v for v in self.ring if v < head.version - _RING_KEEP]:
            del self.ring[v]
        return {
            "t": "write_r",
            "seq": frame["seq"],
            "ok": True,
            "version": version,
            "result": result,
        }

    # -- parking -----------------------------------------------------------

    def park(self, frame: dict[str, Any], now: float) -> None:
        self.parked.append((frame, now + _STALE_AFTER_S))

    def drain_parked(self, now: float) -> list[dict[str, Any]]:
        """Responses for parked batches that became runnable or stale."""
        if not self.parked:
            return []
        out: list[dict[str, Any]] = []
        still: list[tuple[dict[str, Any], float]] = []
        for frame, deadline in self.parked:
            response = self.try_batch(frame)
            if response is not None:
                out.append(response)
            elif now >= deadline:
                out.append(
                    self._fail_batch(
                        frame,
                        f"epoch {frame['epoch']} never reached (replica at "
                        f"{self.store.current.version})",
                    )
                )
            else:
                still.append((frame, deadline))
        self.parked = still
        return out


async def _worker_main(
    manifest: dict[str, Any], shard_id: int, host: str, port: int, token: str
) -> None:
    # untrack=False: we are a spawn child sharing the router's resource
    # tracker, and must not erase its registration (see shm docstring).
    seg, views = attach_arena(manifest, untrack=False)
    try:
        index, data = build_worker_state(manifest, views, shard_id)
        loop_state = _WorkerLoop(index, data)
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            encode_frame(
                {
                    "t": "hello",
                    "shard": shard_id,
                    "pid": os.getpid(),
                    "token": token,
                }
            )
        )
        await writer.drain()
        aloop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await asyncio.wait_for(reader.readline(), 0.25)
                except asyncio.TimeoutError:
                    # Idle tick: expire parked batches whose write never
                    # arrived (structured error beats an infinite park).
                    for response in loop_state.drain_parked(aloop.time()):
                        writer.write(encode_frame(response))
                    await writer.drain()
                    continue
                if not line:
                    return  # router gone: exit quietly, never unlink
                frame = decode_frame(line)
                kind = frame["t"]
                if kind == "batch":
                    response = loop_state.try_batch(frame)
                    if response is None:
                        loop_state.park(frame, aloop.time())
                    else:
                        writer.write(encode_frame(response))
                elif kind == "write":
                    writer.write(encode_frame(loop_state.apply_write(frame)))
                    for response in loop_state.drain_parked(aloop.time()):
                        writer.write(encode_frame(response))
                elif kind == "shutdown":
                    return
                await writer.drain()
        finally:
            writer.close()
    finally:
        seg.close()


def run_worker(
    manifest: dict[str, Any], shard_id: int, host: str, port: int, token: str
) -> None:
    """Spawn-target entrypoint (must be a module-level function)."""
    asyncio.run(_worker_main(manifest, shard_id, host, port, token))
