"""Router <-> worker envelope protocol (internal, NDJSON over TCP).

One short-lived frame type per direction, tagged by ``"t"``:

=============  =========  ===================================================
frame          direction  payload
=============  =========  ===================================================
``hello``      w -> r     ``shard``, ``pid``, ``token`` (boot handshake)
``batch``      r -> w     ``bid``, ``epoch``, ``reqs`` [{id, verb, args,
                          trace}] — one envelope per shard per micro-batch
``batch_r``    w -> r     ``bid``, ``epoch`` (the snapshot actually used),
                          ``kernel_ms``, ``results`` [{id, ok, result |
                          error}]
``write``      r -> w     ``seq``, ``verb`` (insert/delete), ``args``
``write_r``    w -> r     ``seq``, ``ok``, ``version``, ``result | error``
``shutdown``   r -> w     none — worker drains and exits
=============  =========  ===================================================

Reads carry the router's snapshot epoch: the worker executes against its
replica of exactly that version (it keeps a small ring of recent
snapshots), which is what makes scatter-gather reads consistent without
any cross-process locking — the write broadcast is deterministic, so
every replica's version ``v`` has identical contents.

This module is deliberately dumb: encode/decode with no validation
beyond JSON shape.  Both ends are trusted (same process tree); the
public protocol's validation already ran at the router's edge.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ProtocolError

__all__ = ["decode_frame", "encode_frame"]


def encode_frame(frame: dict[str, Any]) -> bytes:
    """One envelope as a compact NDJSON line."""
    return (json.dumps(frame, separators=(",", ":")) + "\n").encode()


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one envelope line; raises ProtocolError on garbage."""
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad shard frame: {exc}") from exc
    if not isinstance(frame, dict) or "t" not in frame:
        raise ProtocolError("shard frame must be an object with 't'")
    return frame
