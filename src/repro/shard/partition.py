"""Tile-space shard planning: contiguous tile-id bands over the CSR base.

Tile ids are row-major, and the packed base sorts rows by the fused
``(tile, class)`` key, so a contiguous tile range ``[t_lo, t_hi)`` is
exactly one contiguous row slab ``[offsets[4*t_lo], offsets[4*t_hi))``.
A shard *is* such a band: workers map the shared columns read-only and
never touch rows outside their slab, and the router can decide which
shards a query footprint reaches with a constant-time per-band overlap
test (no per-tile enumeration).

Bands are planned by balancing *base rows* (replicas), not tiles — the
replica histogram is what actually drives scan cost — using one
``searchsorted`` over the per-tile row bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IndexStateError

__all__ = ["ShardBand", "bands_for_range", "plan_bands", "shard_for_tile"]


@dataclass(frozen=True)
class ShardBand:
    """One shard's ownership: tiles ``[t_lo, t_hi)``, rows ``[row_lo, row_hi)``."""

    shard: int
    t_lo: int
    t_hi: int
    row_lo: int
    row_hi: int

    @property
    def n_tiles(self) -> int:
        return self.t_hi - self.t_lo

    @property
    def n_rows(self) -> int:
        return self.row_hi - self.row_lo

    def owns_tile(self, tile_id: int) -> bool:
        return self.t_lo <= tile_id < self.t_hi

    def to_tuple(self) -> tuple[int, int, int, int, int]:
        """Plain-tuple form for the spawn-pickled shm manifest."""
        return (self.shard, self.t_lo, self.t_hi, self.row_lo, self.row_hi)

    @classmethod
    def from_tuple(cls, t: "tuple[int, int, int, int, int]") -> "ShardBand":
        return cls(int(t[0]), int(t[1]), int(t[2]), int(t[3]), int(t[4]))


def plan_bands(tile_row_bounds: np.ndarray, shards: int) -> list[ShardBand]:
    """Split ``n_tiles`` tiles into ``shards`` row-balanced bands.

    ``tile_row_bounds`` is the per-tile cumulative row table
    ``offsets[::4]`` (length ``n_tiles + 1``): tile ``t``'s rows — all
    four class groups — are ``[bounds[t], bounds[t+1])``.  Cut points
    aim at equal row counts per band via ``searchsorted``; with heavily
    skewed data a band may end up empty (``t_lo == t_hi``), which the
    router and workers both tolerate.
    """
    if shards < 1:
        raise IndexStateError(f"shards must be >= 1, got {shards}")
    bounds = np.asarray(tile_row_bounds, dtype=np.int64)
    n_tiles = bounds.shape[0] - 1
    if n_tiles < 1:
        raise IndexStateError("cannot shard an empty grid")
    total = int(bounds[-1])
    cuts = [0]
    for k in range(1, shards):
        target = (total * k) // shards
        cut = int(np.searchsorted(bounds, target, side="left"))
        # searchsorted lands just past a hot tile; cutting on the near
        # side of it can balance better (tile 0..6 = 7 rows, tile 7 =
        # 1000 rows wants the cut *before* tile 7, not after).
        if (
            cut > 0
            and cut <= n_tiles
            and target - int(bounds[cut - 1]) < int(bounds[cut]) - target
        ):
            cut -= 1
        cut = max(cuts[-1], min(cut, n_tiles))
        cuts.append(cut)
    cuts.append(n_tiles)
    return [
        ShardBand(
            k,
            cuts[k],
            cuts[k + 1],
            int(bounds[cuts[k]]),
            int(bounds[cuts[k + 1]]),
        )
        for k in range(shards)
    ]


def _band_intersects_range(
    band: ShardBand, nx: int, ix0: int, ix1: int, iy0: int, iy1: int
) -> bool:
    """Does the band own any tile of the rectangular footprint?

    Constant time: the band's tiles form a row-major run, so every grid
    row strictly inside the run is fully owned (columns ``0..nx-1``);
    only the run's first and last rows have partial column spans.
    """
    if band.t_lo >= band.t_hi:
        return False
    first = band.t_lo // nx
    last = (band.t_hi - 1) // nx
    lo = max(first, iy0)
    hi = min(last, iy1)
    if lo > hi:
        return False
    # Any fully-owned row inside the footprint intersects it outright.
    if max(lo, first + 1) <= min(hi, last - 1):
        return True
    if first >= lo and first <= hi:
        cl = band.t_lo % nx
        cu = (band.t_hi - 1) % nx if first == last else nx - 1
        if max(cl, ix0) <= min(cu, ix1):
            return True
    if last != first and last >= lo and last <= hi:
        cu = (band.t_hi - 1) % nx
        if max(0, ix0) <= min(cu, ix1):
            return True
    return False


def bands_for_range(
    bands: list[ShardBand], nx: int, ix0: int, ix1: int, iy0: int, iy1: int
) -> list[int]:
    """Shard ids whose band intersects tile range ``[ix0..ix1] x [iy0..iy1]``.

    Ascending shard order — which is ascending tile order, so merging
    per-shard results in this order preserves the global CSR row order
    on the fast path.
    """
    return [
        band.shard
        for band in bands
        if _band_intersects_range(band, nx, ix0, ix1, iy0, iy1)
    ]


def shard_for_tile(bands: list[ShardBand], tile_id: int) -> int:
    """The shard owning ``tile_id`` (bands partition the tile space)."""
    for band in bands:
        if band.owns_tile(tile_id):
            return band.shard
    raise IndexStateError(
        f"tile {tile_id} outside every band (n={len(bands)})"
    )
