"""Shared publication of the immutable serving base: shm or mapped file.

Two arena kinds hide behind one manifest shape (``manifest["kind"]``):

* ``"shm"`` — the router copies the packed CSR columns (offsets + 4
  coordinate columns + ids), the dataset columns and the precomputed
  fast-path query matrix into **one** ``multiprocessing.shared_memory``
  arena, 64-byte aligned per array.  Workers attach read-only views —
  zero copies, zero serialization, and the (6, N) query matrix is built
  once and shared by every shard.
* ``"file"`` — when the base was loaded from a columnar index container
  (:mod:`repro.core.format`), the slabs already sit 64-byte aligned in
  a mappable file; the manifest just names the path and the section
  layout, and every worker ``mmap``-s the very same file.  K workers
  then share one page cache with **zero publication copies** — the
  router never materialises the columns at all.

Lifecycle discipline (the part that actually bites, shm kind only —
file arenas have no kernel object to leak):

* the **router** is the only creator and the only unlinker.  Clean
  shutdown unlinks explicitly; if the router dies hard, CPython's
  ``resource_tracker`` sidecar process (which survives the crash)
  unlinks the segment for it.
* **workers** attach by name with ``untrack=False`` and only ever
  ``close()``.  Spawn children inherit the router's resource tracker,
  so the bpo-38119 unregister an unrelated attacher would perform is
  wrong here — it would erase the *router's* registration from the
  shared tracker and turn a router SIGKILL into a permanent leak.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro.errors import IndexStateError

__all__ = [
    "FileArena",
    "attach_arena",
    "file_arena_manifest",
    "publish_arena",
    "unlink_arena",
]

_ALIGN = 64


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


def publish_arena(
    arrays: dict[str, np.ndarray]
) -> tuple[shared_memory.SharedMemory, dict[str, Any]]:
    """Copy ``arrays`` into one new shm arena; return (segment, manifest).

    The manifest is a plain (spawn-picklable) dict describing the
    segment name and each array's offset/dtype/shape; pass it to worker
    processes and hand it to :func:`attach_arena` there.
    """
    layout: dict[str, Any] = {}
    pos = 0
    for name, arr in arrays.items():
        if not arr.flags.c_contiguous:
            raise IndexStateError(f"array {name!r} must be C-contiguous")
        layout[name] = {
            "offset": pos,
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
        }
        pos = _aligned(pos + arr.nbytes)
    seg = shared_memory.SharedMemory(create=True, size=max(pos, 1))
    for name, arr in arrays.items():
        spec = layout[name]
        dst = np.ndarray(
            arr.shape, dtype=arr.dtype, buffer=seg.buf, offset=spec["offset"]
        )
        dst[...] = arr
    manifest = {
        "kind": "shm",
        "segment": seg.name,
        "nbytes": max(pos, 1),
        "arrays": layout,
    }
    return seg, manifest


class FileArena:
    """Handle for a file-backed arena: owns the mapping, closes cleanly.

    Mirrors the slice of the ``SharedMemory`` API the serving layer
    uses (``close()``), so workers treat both arena kinds uniformly.
    There is nothing to unlink — the backing file is the index archive
    itself and outlives every process.
    """

    __slots__ = ("path", "_mm")

    def __init__(self, path: str, mm: np.memmap):
        self.path = path
        self._mm = mm

    def close(self) -> None:
        mm = self._mm
        self._mm = None
        if mm is not None and mm._mmap is not None:
            try:  # pragma: no cover - platform-dependent cleanup
                mm._mmap.close()
            except BufferError:
                # Live views still reference the mapping; the GC closes
                # it when they go away (same semantics as shm close on
                # CPython refcounting).
                pass


def file_arena_manifest(
    path: str, arrays: dict[str, Any]
) -> dict[str, Any]:
    """Manifest describing a file-backed arena (no copies, no segment).

    ``arrays`` maps each published name to its ``{offset, dtype,
    shape}`` within the file — exactly the layout
    :func:`repro.core.persistence.load_index` records from the columnar
    container's section table.
    """
    return {"kind": "file", "path": path, "arrays": dict(arrays)}


def _attach_file(
    manifest: dict[str, Any]
) -> tuple[FileArena, dict[str, np.ndarray]]:
    path = manifest["path"]
    # The path came out of a format-version-checked container load (the
    # REP007 contract lives in repro.core.format); here we only re-map.
    mm = np.memmap(path, dtype=np.uint8, mode="r")
    views: dict[str, np.ndarray] = {}
    for name, spec in manifest["arrays"].items():
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        nbytes = dtype.itemsize
        for dim in shape:
            nbytes *= dim
        offset = spec["offset"]
        views[name] = (
            mm[offset : offset + nbytes].view(dtype).reshape(shape)
        )
    return FileArena(path, mm), views


def attach_arena(
    manifest: dict[str, Any], *, untrack: bool = True
) -> "tuple[shared_memory.SharedMemory | FileArena, dict[str, np.ndarray]]":
    """Attach a published arena; return (segment, read-only views).

    The caller must keep the returned segment object alive as long as
    the views are used, and ``close()`` it when done (never ``unlink``
    from an attaching process).  File-backed arenas
    (``manifest["kind"] == "file"``) return a :class:`FileArena` and
    ignore ``untrack`` — there is no kernel object to track.

    ``untrack`` handles bpo-38119: attaching registers this process as
    an owner with its resource tracker, which would unlink the arena
    when the attacher exits.  An *unrelated* process wants the default
    ``untrack=True``.  A spawn **child of the creator** must pass
    ``untrack=False``: it inherits the creator's tracker, so the
    register above was a set-duplicate no-op and unregistering here
    would erase the creator's own entry — after which a hard-killed
    creator leaks the segment forever.
    """
    if manifest.get("kind", "shm") == "file":
        return _attach_file(manifest)
    seg = shared_memory.SharedMemory(name=manifest["segment"])
    if untrack:
        try:  # pragma: no cover - absent on platforms without tracker
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
    views: dict[str, np.ndarray] = {}
    for name, spec in manifest["arrays"].items():
        view = np.ndarray(
            tuple(spec["shape"]),
            dtype=np.dtype(spec["dtype"]),
            buffer=seg.buf,
            offset=spec["offset"],
        )
        view.setflags(write=False)
        views[name] = view
    return seg, views


def unlink_arena(
    seg: "shared_memory.SharedMemory | FileArena | None",
) -> None:
    """Close and unlink the arena; idempotent (already-gone is fine).

    File arenas only close their mapping — the backing index file is
    durable state and is never deleted by the serving layer.
    """
    if seg is None:
        return
    if isinstance(seg, FileArena):
        seg.close()
        return
    try:
        seg.close()
    except Exception:
        pass
    # A same-process attach_arena (tests, single-process tooling) has
    # unregistered the name; re-register so unlink's own unregister
    # finds it (the tracker cache is a set — duplicates are harmless).
    try:  # pragma: no cover - absent on platforms without the tracker
        resource_tracker.register(seg._name, "shared_memory")
    except Exception:
        pass
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
