"""Shared-memory publication of the immutable serving base.

The router copies the packed CSR columns (offsets + 4 coordinate
columns + ids), the dataset columns and the precomputed fast-path query
matrix into **one** ``multiprocessing.shared_memory`` arena, 64-byte
aligned per array.  Workers attach read-only views — zero copies, zero
serialization, and the (6, N) query matrix is built once and shared by
every shard.

Lifecycle discipline (the part that actually bites):

* the **router** is the only creator and the only unlinker.  Clean
  shutdown unlinks explicitly; if the router dies hard, CPython's
  ``resource_tracker`` sidecar process (which survives the crash)
  unlinks the segment for it.
* **workers** attach by name with ``untrack=False`` and only ever
  ``close()``.  Spawn children inherit the router's resource tracker,
  so the bpo-38119 unregister an unrelated attacher would perform is
  wrong here — it would erase the *router's* registration from the
  shared tracker and turn a router SIGKILL into a permanent leak.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro.errors import IndexStateError

__all__ = ["attach_arena", "publish_arena", "unlink_arena"]

_ALIGN = 64


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


def publish_arena(
    arrays: dict[str, np.ndarray]
) -> tuple[shared_memory.SharedMemory, dict[str, Any]]:
    """Copy ``arrays`` into one new shm arena; return (segment, manifest).

    The manifest is a plain (spawn-picklable) dict describing the
    segment name and each array's offset/dtype/shape; pass it to worker
    processes and hand it to :func:`attach_arena` there.
    """
    layout: dict[str, Any] = {}
    pos = 0
    for name, arr in arrays.items():
        if not arr.flags.c_contiguous:
            raise IndexStateError(f"array {name!r} must be C-contiguous")
        layout[name] = {
            "offset": pos,
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
        }
        pos = _aligned(pos + arr.nbytes)
    seg = shared_memory.SharedMemory(create=True, size=max(pos, 1))
    for name, arr in arrays.items():
        spec = layout[name]
        dst = np.ndarray(
            arr.shape, dtype=arr.dtype, buffer=seg.buf, offset=spec["offset"]
        )
        dst[...] = arr
    manifest = {"segment": seg.name, "nbytes": max(pos, 1), "arrays": layout}
    return seg, manifest


def attach_arena(
    manifest: dict[str, Any], *, untrack: bool = True
) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Attach a published arena; return (segment, read-only views).

    The caller must keep the returned segment object alive as long as
    the views are used, and ``close()`` it when done (never ``unlink``
    from an attaching process).

    ``untrack`` handles bpo-38119: attaching registers this process as
    an owner with its resource tracker, which would unlink the arena
    when the attacher exits.  An *unrelated* process wants the default
    ``untrack=True``.  A spawn **child of the creator** must pass
    ``untrack=False``: it inherits the creator's tracker, so the
    register above was a set-duplicate no-op and unregistering here
    would erase the creator's own entry — after which a hard-killed
    creator leaks the segment forever.
    """
    seg = shared_memory.SharedMemory(name=manifest["segment"])
    if untrack:
        try:  # pragma: no cover - absent on platforms without tracker
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
    views: dict[str, np.ndarray] = {}
    for name, spec in manifest["arrays"].items():
        view = np.ndarray(
            tuple(spec["shape"]),
            dtype=np.dtype(spec["dtype"]),
            buffer=seg.buf,
            offset=spec["offset"],
        )
        view.setflags(write=False)
        views[name] = view
    return seg, views


def unlink_arena(seg: "shared_memory.SharedMemory | None") -> None:
    """Close and unlink the arena; idempotent (already-gone is fine)."""
    if seg is None:
        return
    try:
        seg.close()
    except Exception:
        pass
    # A same-process attach_arena (tests, single-process tooling) has
    # unregistered the name; re-register so unlink's own unregister
    # finds it (the tracker cache is a set — duplicates are harmless).
    try:  # pragma: no cover - absent on platforms without the tracker
        resource_tracker.register(seg._name, "shared_memory")
    except Exception:
        pass
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
