"""Scatter-gather router: the public NDJSON server in sharded mode.

:class:`ShardedQueryService` subclasses the single-process
:class:`~repro.server.service.SpatialQueryService` and replaces only the
execution layers — the protocol edge, admission control, micro-batcher,
telemetry and drain machinery are inherited unchanged:

* **boot** publishes the packed base into one shm arena, spawns one
  ShardWorker process per band (``spawn`` context — no forked locks),
  and waits for each worker to dial back over a loopback rendezvous
  socket before accepting clients.
* **reads**: each micro-batch is split into *local* verbs (ping,
  describe, explain, stats and the admin verbs — answered from the
  router's own full snapshot) and *scatter* verbs (window / count /
  disk / knn).  Scatter requests are routed by tile footprint — the
  band table answers "which shards own part of this range" in O(K) —
  and coalesced into **one envelope per shard per batch**, stamped with
  the router's snapshot epoch.  Workers answer at exactly that epoch,
  so the merge (band-ordered concatenation — tile ownership partitions
  the result space, see :mod:`repro.shard.banded`) never mixes
  versions; a mismatched epoch in any sub-response fails the request
  with a structured error instead of merging garbage.  kNN is sent
  whole to the worker owning the query point's tile (any live worker
  is equivalent — all hold full state).
* **writes** go through the single inherited writer queue: the router
  applies each write to its *local* store first (the source of truth
  its own verbs serve from), then broadcasts it to every live worker
  and verifies each ack reports the identical new version —
  deterministic application means the per-shard epoch vector stays
  uniform without coordination; a worker that diverges or dies is
  marked dead and subsequent requests needing it get ``degraded``
  errors (the :class:`~repro.errors.ParallelExecutionError` discipline:
  structured failure, never a hang).
* **SIGTERM** drains exactly like the parent, then sends each worker a
  shutdown envelope, reaps the processes and unlinks the arena.

Under ``REPRO_SANITIZE=1`` the router additionally cross-checks sampled
merged window/disk results against a local evaluation on the same
pinned snapshot — the sharded twin of the single-process sanitizer's
naive-scan check, and the merge-time consistency check for the
cross-shard epoch contract.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import time
from typing import Any

import numpy as np

from repro.analysis import sanitize as _sanitize
from repro.datasets.dataset import RectDataset
from repro.datasets.queries import DiskQuery
from repro.errors import IndexStateError, ParallelExecutionError, ReproError
from repro.geometry.mbr import Rect
from repro.obs import tracing as _tracing
from repro.server.batcher import PendingRequest
from repro.server.protocol import Request, encode_error, encode_response
from repro.server.service import (
    ServerConfig,
    SpatialQueryService,
    _BatchCtx,
    _Connection,
)
from repro.server.snapshot import Snapshot
from repro.shard.partition import (
    ShardBand,
    bands_for_range,
    plan_bands,
    shard_for_tile,
)
from repro.shard.shm import file_arena_manifest, publish_arena, unlink_arena
from repro.shard.wire import decode_frame, encode_frame
from repro.shard.worker import run_worker

if False:  # pragma: no cover - typing only
    from repro.core.two_layer import TwoLayerGrid
    from repro.obs.metrics import MetricsRegistry

__all__ = ["ShardedQueryService"]

#: verbs fanned out to shard workers; everything else answers locally.
_SCATTER_VERBS = frozenset({"window", "count", "disk", "knn"})


class _ShardLink:
    """The router's end of one worker connection: frame mux + liveness."""

    def __init__(
        self,
        service: "ShardedQueryService",
        shard: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        pid: "int | None" = None,
    ):
        self.service = service
        self.shard = shard
        self.reader = reader
        self.writer = writer
        self.pid = pid
        self.alive = True
        self.last_epoch = 0
        self._batches: dict[int, asyncio.Future] = {}
        self._writes: dict[int, asyncio.Future] = {}

    def _send(self, frame: dict[str, Any], fut: asyncio.Future) -> None:
        try:
            self.writer.write(encode_frame(frame))
        except Exception:
            self.mark_dead()
        if not self.alive and not fut.done():
            fut.set_exception(
                ParallelExecutionError(f"shard {self.shard} worker is dead")
            )

    def send_batch(
        self, bid: int, epoch: int, reqs: list[dict[str, Any]]
    ) -> asyncio.Future:
        fut = asyncio.get_running_loop().create_future()
        self._batches[bid] = fut
        self._send({"t": "batch", "bid": bid, "epoch": epoch, "reqs": reqs}, fut)
        return fut

    def send_write(
        self, seq: int, verb: str, args: dict[str, Any]
    ) -> asyncio.Future:
        fut = asyncio.get_running_loop().create_future()
        self._writes[seq] = fut
        self._send({"t": "write", "seq": seq, "verb": verb, "args": args}, fut)
        return fut

    def send_shutdown(self) -> None:
        try:
            self.writer.write(encode_frame({"t": "shutdown"}))
        except Exception:
            pass

    async def read_loop(self) -> None:
        try:
            while True:
                line = await self.reader.readline()
                if not line:
                    break
                frame = decode_frame(line)
                kind = frame["t"]
                if kind == "batch_r":
                    self.last_epoch = max(self.last_epoch, frame["epoch"])
                    fut = self._batches.pop(frame["bid"], None)
                elif kind == "write_r":
                    if frame.get("ok"):
                        self.last_epoch = max(self.last_epoch, frame["version"])
                    fut = self._writes.pop(frame["seq"], None)
                else:
                    continue
                if fut is not None and not fut.done():
                    fut.set_result(frame)
        except Exception:
            pass
        finally:
            self.mark_dead()

    def mark_dead(self) -> None:
        """Fail every pending future now — degraded responses, no hangs."""
        if not self.alive:
            return
        self.alive = False
        exc = ParallelExecutionError(f"shard {self.shard} worker died")
        for fut in list(self._batches.values()) + list(self._writes.values()):
            if not fut.done():
                fut.set_exception(exc)
        self._batches.clear()
        self._writes.clear()
        try:
            self.writer.close()
        except Exception:
            pass
        self.service._on_link_dead(self.shard)


class _Scatter:
    """One in-flight scattered request: its owner shards and merge mode."""

    __slots__ = ("pending", "shards", "count_only", "footprint")

    def __init__(
        self,
        pending: PendingRequest,
        shards: list[int],
        count_only: bool,
        footprint: "tuple[int, int, int, int] | None",
    ):
        self.pending = pending
        self.shards = shards
        self.count_only = count_only
        self.footprint = footprint


class ShardedQueryService(SpatialQueryService):
    """Router mode: K shared-memory shard workers behind one NDJSON edge."""

    def __init__(
        self,
        index: "TwoLayerGrid",
        data: RectDataset,
        config: "ServerConfig | None" = None,
        registry: "MetricsRegistry | None" = None,
        shards: int = 2,
        scatter_timeout_s: float = 5.0,
    ):
        if shards < 1:
            raise IndexStateError(f"shards must be >= 1, got {shards}")
        if index._store is None:
            # Workers map the packed CSR base from shared memory, so a
            # legacy-backend index (including one loaded from an old
            # --index archive) is rebuilt packed at boot.
            from repro.core.two_layer import TwoLayerGrid as _TLG

            rebuilt = _TLG(index.grid, storage="packed")
            rebuilt._bulk_load(data)
            index = rebuilt
        elif index._tiles or index._store.n_dead:
            # Workers map the immutable base; fold any overlay first so
            # the arena carries the complete state.
            index.compact()
        super().__init__(index, data, config, registry)
        self.shards = shards
        self.scatter_timeout_s = scatter_timeout_s
        self._grid = index.grid
        self.bands: list[ShardBand] = plan_bands(
            index._store.offsets[::4], shards
        )
        self._links: "list[_ShardLink | None]" = [None] * shards
        self._procs: list = [None] * shards
        self._seg = None
        self.manifest: "dict[str, Any] | None" = None
        self._internal_server: "asyncio.base_events.Server | None" = None
        self._hello_waiters: list[asyncio.Future] = []
        self._scatter_tasks: set[asyncio.Task] = set()
        self._bid_seq = itertools.count(1)
        self._wseq = itertools.count(1)
        self._rid_seq = itertools.count(1)
        self._sanitize_tick = 0
        self._token = os.urandom(8).hex()
        self._m_shard_req = [
            self.registry.counter(f"server.shard.{k}.requests")
            for k in range(shards)
        ]
        self._m_shard_batches = [
            self.registry.counter(f"server.shard.{k}.batches")
            for k in range(shards)
        ]
        self._m_shard_dead = [
            self.registry.gauge(f"server.shard.{k}.dead") for k in range(shards)
        ]
        self._m_shard_epoch = [
            self.registry.gauge(f"server.shard.{k}.epoch")
            for k in range(shards)
        ]
        self._m_degraded = self.registry.counter("server.errors.degraded")
        self._m_epoch_mismatch = self.registry.counter(
            "server.shard.epoch_mismatch"
        )

    # -- boot --------------------------------------------------------------

    def _publish(self) -> None:
        snap = self.store.current
        index = snap.index
        store = index._store
        if index._fast_q is None:
            index._build_fast_q()  # built once here, shared by every worker
        grid = self._grid
        manifest = self._file_manifest(snap)
        if manifest is not None:
            # The base came straight out of a columnar container and is
            # untouched: workers map the index file itself — no shm
            # segment, no publication copy, one shared page cache.
            self._seg = None
        else:
            arrays = {
                "offsets": store.offsets,
                "xl": store.xl,
                "yl": store.yl,
                "xu": store.xu,
                "yu": store.yu,
                "ids": store.ids,
                "fast_q": index._fast_q,
                "data_xl": snap.data.xl,
                "data_yl": snap.data.yl,
                "data_xu": snap.data.xu,
                "data_yu": snap.data.yu,
            }
            self._seg, manifest = publish_arena(arrays)
        d = grid.domain
        manifest["nx"] = grid.nx
        manifest["ny"] = grid.ny
        manifest["domain"] = (d.xl, d.yl, d.xu, d.yu)
        manifest["n_objects"] = len(snap.data)
        manifest["bands"] = [b.to_tuple() for b in self.bands]
        self.manifest = manifest

    #: arrays every worker needs; a file manifest must cover all of them.
    _ARENA_ARRAYS = (
        "offsets", "xl", "yl", "xu", "yu", "ids", "fast_q",
        "data_xl", "data_yl", "data_xu", "data_yu",
    )

    def _file_manifest(self, snap) -> "dict[str, Any] | None":
        """A file-arena manifest when the base is a pristine mapped index.

        Requires the snapshot's index to still be exactly the columnar
        container it was loaded from — no delta overlay, no tombstones
        (workers rebuild those states from write broadcasts, but the
        *base* columns must match the file bytes) — and the container to
        carry the dataset columns (a collection archive).
        """
        index = snap.index
        mman = getattr(index, "_mmap_manifest", None)
        if (
            mman is None
            or index._tiles
            or index._store is None
            or index._store.n_dead
        ):
            return None
        arrays = mman.get("arrays", {})
        if any(name not in arrays for name in self._ARENA_ARRAYS):
            return None
        return file_arena_manifest(
            mman["path"],
            {name: arrays[name] for name in self._ARENA_ARRAYS},
        )

    async def _handle_worker(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        line = await reader.readline()
        if not line:
            writer.close()
            return
        try:
            hello = decode_frame(line)
        except ReproError:
            writer.close()
            return
        if (
            hello.get("t") != "hello"
            or hello.get("token") != self._token
            or not isinstance(hello.get("shard"), int)
            or not (0 <= hello["shard"] < self.shards)
        ):
            writer.close()
            return
        k = hello["shard"]
        link = _ShardLink(self, k, reader, writer, pid=hello.get("pid"))
        self._links[k] = link
        waiter = self._hello_waiters[k]
        if not waiter.done():
            waiter.set_result(k)
        await link.read_loop()

    async def start(self) -> None:
        t0 = time.perf_counter()
        loop = asyncio.get_running_loop()
        self._hello_waiters = [loop.create_future() for _ in range(self.shards)]
        self._internal_server = await asyncio.start_server(
            self._handle_worker, "127.0.0.1", 0
        )
        ihost, iport = self._internal_server.sockets[0].getsockname()[:2]
        self._publish()
        ctx = multiprocessing.get_context("spawn")
        for k in range(self.shards):
            proc = ctx.Process(
                target=run_worker,
                args=(self.manifest, k, ihost, iport, self._token),
                daemon=True,
                name=f"repro-shard-{k}",
            )
            proc.start()
            self._procs[k] = proc
        try:
            await asyncio.wait_for(
                asyncio.gather(*self._hello_waiters), timeout=60.0
            )
        except asyncio.TimeoutError:
            await self._stop_workers()
            raise IndexStateError("shard workers failed to connect at boot")
        self.registry.gauge("server.boot.shards_ms").set(
            round((time.perf_counter() - t0) * 1e3, 3)
        )
        await super().start()

    # -- liveness ----------------------------------------------------------

    def _on_link_dead(self, shard: int) -> None:
        self._m_shard_dead[shard].set(1.0)
        waiter = (
            self._hello_waiters[shard]
            if shard < len(self._hello_waiters)
            else None
        )
        if waiter is not None and not waiter.done():
            waiter.set_exception(
                ParallelExecutionError(f"shard {shard} died during boot")
            )

    def _live_link(self, shard: int) -> "_ShardLink | None":
        link = self._links[shard]
        return link if link is not None and link.alive else None

    def shard_status(self) -> dict[str, Any]:
        """The cross-shard epoch vector + liveness, as served by stats."""
        return {
            "count": self.shards,
            "local_epoch": self.store.current.version,
            "epochs": [
                link.last_epoch if (link := self._links[k]) is not None else None
                for k in range(self.shards)
            ],
            "dead": [
                k for k in range(self.shards) if self._live_link(k) is None
            ],
            "bands": [[b.t_lo, b.t_hi] for b in self.bands],
            "pids": [
                link.pid if (link := self._links[k]) is not None else None
                for k in range(self.shards)
            ],
        }

    def _run_verb(self, snap: Snapshot, req: Request, stats=None):
        result = super()._run_verb(snap, req, stats)
        if req.verb in ("stats", "describe"):
            result["shards"] = self.shard_status()
        return result

    # -- scatter-gather reads ---------------------------------------------

    async def _batch_loop(self) -> None:
        while True:
            batch = await self.batcher.next_batch()
            if batch is None:
                if self._scatter_tasks:
                    await asyncio.gather(
                        *list(self._scatter_tasks), return_exceptions=True
                    )
                return
            task = asyncio.ensure_future(self._execute_batch_sharded(batch))
            self._scatter_tasks.add(task)
            task.add_done_callback(self._scatter_tasks.discard)

    def _route(self, req: Request) -> "tuple[list[int], tuple[int, int, int, int] | None]":
        """Owner shards of one scatter verb (+ tile footprint for heat)."""
        args = req.args
        grid = self._grid
        if req.verb == "knn":
            tid = (
                grid.tile_iy(args["cy"]) * grid.nx + grid.tile_ix(args["cx"])
            )
            home = shard_for_tile(self.bands, tid)
            if self._live_link(home) is not None:
                return [home], None
            # Any live worker is equivalent for knn (full state).
            for k in range(self.shards):
                if self._live_link(k) is not None:
                    return [k], None
            return [home], None  # all dead: fails as degraded downstream
        if req.verb == "disk":
            window = DiskQuery(args["cx"], args["cy"], args["radius"]).mbr()
        else:
            window = Rect(args["xl"], args["yl"], args["xu"], args["yu"])
        ix0, ix1, iy0, iy1 = grid.tile_range_for_window(window)
        shards = bands_for_range(self.bands, grid.nx, ix0, ix1, iy0, iy1)
        return shards, (ix0, ix1, iy0, iy1)

    async def _execute_batch_sharded(
        self, batch: "list[PendingRequest]"
    ) -> None:
        t_exec = time.perf_counter()
        self._m_queue_depth.set(self.batcher.depth())
        self._m_batch_size.observe(len(batch))
        snap = self.store.current
        epoch = snap.version
        bctx: "_BatchCtx | None" = None
        if self.telemetry is not None:
            pin_ms = (time.perf_counter() - t_exec) * 1e3
            self._heat_tick += 1
            stats = (
                self.telemetry.stats
                if self._heat_tick % self.config.heat_sample == 0
                else None
            )
            bctx = _BatchCtx(t_exec, pin_ms, epoch, len(batch), stats)
        meta = {"snapshot": epoch, "batch_size": len(batch)}
        out: dict[_Connection, list[bytes]] = {}
        per_shard, scatters = self._split_batch(snap, batch, out, bctx, meta)
        # Local verbs answered — flush them now rather than holding them
        # hostage to the worker round-trip.
        self._flush(out)
        if not scatters:
            return
        t_scatter = time.perf_counter()
        futs: dict[int, asyncio.Future] = {}
        bid = next(self._bid_seq)
        for k, reqs in per_shard.items():
            link = self._live_link(k)
            if link is None:
                continue  # already degraded in merge (no frame for k)
            self._m_shard_batches[k].inc()
            self._m_shard_req[k].inc(len(reqs))
            futs[k] = link.send_batch(bid, epoch, reqs)
        if futs:
            done, not_done = await asyncio.wait(
                futs.values(), timeout=self.scatter_timeout_s
            )
            if not_done:
                # A hung worker is a dead worker: fail its futures now.
                for k, fut in futs.items():
                    if fut in not_done:
                        link = self._links[k]
                        if link is not None:
                            link.mark_dead()
                await asyncio.gather(*not_done, return_exceptions=True)
        frames: dict[int, "dict[str, Any] | None"] = {}
        for k, fut in futs.items():
            frames[k] = fut.result() if fut.exception() is None else None
        scatter_ms = (time.perf_counter() - t_scatter) * 1e3
        out2: dict[_Connection, list[bytes]] = {}
        self._merge(snap, scatters, frames, epoch, meta, out2, bctx, scatter_ms)
        self._flush(out2)

    def _flush(self, out: "dict[_Connection, list[bytes]]") -> None:
        for conn, payloads in out.items():
            conn.send(payloads[0] if len(payloads) == 1 else b"".join(payloads))

    def _split_batch(
        self,
        snap: Snapshot,
        batch: "list[PendingRequest]",
        out: "dict[_Connection, list[bytes]]",
        bctx: "_BatchCtx | None",
        meta: dict,
    ) -> tuple[
        "dict[int, list[dict[str, Any]]]", "dict[int, _Scatter]"
    ]:
        """Answer local verbs inline; build per-shard scatter envelopes."""
        per_shard: dict[int, list[dict[str, Any]]] = {}
        scatters: dict[int, _Scatter] = {}
        with _tracing.activate(self.tracer):
            with _tracing.span("server.batch"):
                for pending in batch:
                    req = pending.request
                    if req.verb not in _SCATTER_VERBS:
                        t0 = time.perf_counter()
                        result, err = self._execute_single(
                            snap, req, None if bctx is None else bctx.stats
                        )
                        if bctx is not None:
                            bctx.kernel_ms = (time.perf_counter() - t0) * 1e3
                        if err is not None:
                            self._respond(pending, err, out)
                        else:
                            self._deliver(pending, result, meta, out, bctx)
                        continue
                    try:
                        shards, footprint = self._route(req)
                    except ReproError as exc:
                        self._respond(
                            pending,
                            encode_error(
                                req.id,
                                "invalid_query",
                                str(exc),
                                trace=req.trace,
                            ),
                            out,
                        )
                        continue
                    dead = [
                        k for k in shards if self._live_link(k) is None
                    ]
                    if dead:
                        self._m_degraded.inc()
                        self._respond(
                            pending,
                            encode_error(
                                req.id,
                                "degraded",
                                f"shard(s) {dead} unavailable for "
                                f"{req.verb}; partial results withheld",
                                trace=req.trace,
                            ),
                            out,
                        )
                        continue
                    rid = next(self._rid_seq)
                    scatters[rid] = _Scatter(
                        pending, shards, req.verb == "count", footprint
                    )
                    env = {
                        "id": rid,
                        "verb": req.verb,
                        "args": req.args,
                        "trace": req.trace,
                    }
                    for k in shards:
                        per_shard.setdefault(k, []).append(env)
                if bctx is not None and bctx.stats is not None:
                    for sc in scatters.values():
                        if sc.footprint is not None:
                            self._record_footprint(sc.footprint)
        return per_shard, scatters

    def _record_footprint(self, footprint: tuple[int, int, int, int]) -> None:
        """Feed the heat map with the query's tile footprint.

        The router never runs kernels for scattered verbs, so its heat
        signal is footprint density (scans only; rows stay zero) — the
        hot-tile ranking ``--top`` shows is preserved.
        """
        ix0, ix1, iy0, iy1 = footprint
        heat = self.telemetry.heat
        nx = self._grid.nx
        tids = (
            np.arange(iy0, iy1 + 1, dtype=np.int64)[:, None] * nx
            + np.arange(ix0, ix1 + 1, dtype=np.int64)[None, :]
        ).ravel()
        heat.scans[tids] += 1.0
        heat.total_visits += int(tids.shape[0])

    def _merge(
        self,
        snap: Snapshot,
        scatters: "dict[int, _Scatter]",
        frames: "dict[int, dict[str, Any] | None]",
        epoch: int,
        meta: dict,
        out: "dict[_Connection, list[bytes]]",
        bctx: "_BatchCtx | None",
        scatter_ms: float,
    ) -> None:
        """Band-ordered merge of worker sub-results, one epoch, no dedup."""
        by_id: dict[int, dict[int, dict[str, Any]]] = {}
        for k, frame in frames.items():
            if frame is not None:
                by_id[k] = {r["id"]: r for r in frame["results"]}
        for rid, sc in scatters.items():
            req = sc.pending.request
            subs: list[dict[str, Any]] = []
            failure: "tuple[str, str] | None" = None
            kernel_ms = 0.0
            for k in sc.shards:
                frame = frames.get(k)
                if frame is None:
                    failure = (
                        "degraded",
                        f"shard {k} worker died mid-query; reissue the "
                        f"request",
                    )
                    break
                if frame["epoch"] != epoch:
                    # The merge-time cross-shard consistency check: every
                    # sub-response must be cut at the stamped epoch.
                    self._m_epoch_mismatch.inc()
                    failure = (
                        "degraded",
                        f"shard {k} answered at epoch {frame['epoch']}, "
                        f"batch stamped {epoch}",
                    )
                    break
                entry = by_id[k].get(rid)
                if entry is None:
                    failure = ("internal", f"shard {k} dropped request")
                    break
                if not entry["ok"]:
                    err = entry["error"]
                    failure = (
                        "degraded" if err["code"] == "internal" else err["code"],
                        f"shard {k}: {err['message']}",
                    )
                    break
                kernel_ms = max(kernel_ms, frame.get("kernel_ms", 0.0))
                subs.append(entry["result"])
            if failure is not None:
                if failure[0] == "degraded":
                    self._m_degraded.inc()
                self._respond(
                    sc.pending,
                    encode_error(req.id, failure[0], failure[1], trace=req.trace),
                    out,
                )
                continue
            if sc.count_only:
                result: dict[str, Any] = {
                    "count": sum(s["count"] for s in subs)
                }
            elif req.verb == "knn":
                result = subs[0]
            else:
                ids: list[int] = []
                for s in subs:
                    ids.extend(s["ids"])
                result = {"ids": ids, "count": len(ids)}
                if _sanitize.enabled():
                    self._sanitize_merge(snap, req, result["ids"])
            self._deliver_remote(
                sc.pending, result, meta, out, bctx, sc.shards,
                kernel_ms, scatter_ms,
            )

    def _sanitize_merge(
        self, snap: Snapshot, req: Request, merged_ids: list[int]
    ) -> None:
        """REPRO_SANITIZE: sampled cross-check of a merged scatter result
        against a local evaluation on the same pinned snapshot."""
        self._sanitize_tick += 1
        if self._sanitize_tick % _sanitize._sample_every() != 0:
            return
        args = req.args
        if req.verb == "disk":
            ref = snap.index.disk_query(
                DiskQuery(args["cx"], args["cy"], args["radius"])
            )
        elif req.verb == "window" and args.get("predicate") == "within":
            ref = snap.index.window_query_within(
                Rect(args["xl"], args["yl"], args["xu"], args["yu"])
            )
        else:
            ref = snap.index.window_query(
                Rect(args["xl"], args["yl"], args["xu"], args["yu"])
            )
        got = sorted(merged_ids)
        want = sorted(int(i) for i in ref)
        if got != want:
            raise _sanitize.SanitizerError(
                "shard_merge_parity",
                f"router._merge[{req.verb}]",
                {
                    "merged": len(got),
                    "local": len(want),
                    "epoch": snap.version,
                },
            )

    def _deliver_remote(
        self,
        pending: PendingRequest,
        result: dict,
        meta: dict,
        out: "dict[_Connection, list[bytes]]",
        bctx: "_BatchCtx | None",
        shards: list[int],
        kernel_ms: float,
        scatter_ms: float,
    ) -> None:
        """Scattered-request twin of the parent's ``_deliver``: same trace
        retention rules, phases gain ``scatter_ms`` + the ``shard`` hop."""
        req = pending.request
        rmeta = {**meta, "shards": shards}
        if bctx is None:
            # Telemetry off: stay lean — no server-assigned ids — but a
            # client-supplied trace must still be echoed (RV205).
            self._respond(
                pending,
                encode_response(req.id, result, rmeta, trace=req.trace),
                out,
            )
            return
        trace_id = req.trace or f"t-{next(self._trace_seq):06x}"
        phases = {
            "queue_ms": round(
                (pending.dequeued_at - pending.enqueued_at) * 1e3, 3
            ),
            "coalesce_ms": round((bctx.t_exec - pending.dequeued_at) * 1e3, 3),
            "snapshot_pin_ms": round(bctx.pin_ms, 4),
            "scatter_ms": round(scatter_ms, 3),
            "kernel_ms": round(kernel_ms, 3),
            "refine_ms": 0.0,
            "shard": shards[0] if len(shards) == 1 else shards,
        }
        record = None
        if req.trace is not None:
            t0 = time.perf_counter()
            payload = encode_response(
                req.id, result, {**rmeta, "phases": phases}, trace=trace_id
            )
            phases["serialize_ms"] = round((time.perf_counter() - t0) * 1e3, 3)
            record = self._make_record(pending, bctx, trace_id, phases)
            record["shards"] = shards
        else:
            payload = encode_response(req.id, result, rmeta, trace=trace_id)
            if self.telemetry is not None:
                self._trace_tick += 1
                latency_ms = (time.perf_counter() - pending.enqueued_at) * 1e3
                if (
                    latency_ms >= self.telemetry.slowlog.threshold_ms
                    or self._trace_tick % self.config.trace_sample == 0
                ):
                    record = self._make_record(pending, bctx, trace_id, phases)
                    record["shards"] = shards
        self._respond(
            pending, payload, out, bctx=None, trace_id=trace_id, record=record
        )

    # -- writes ------------------------------------------------------------

    async def _writer_loop(self) -> None:
        while True:
            pending = await self._write_q.get()
            if pending is None:
                return
            await self._apply_write_sharded(pending)

    async def _apply_write_sharded(self, pending: PendingRequest) -> None:
        req = pending.request
        tel = self.telemetry
        trace_id = None
        if tel is not None:
            trace_id = req.trace or f"t-{next(self._trace_seq):06x}"
        t0 = time.perf_counter()
        result = None
        version = None
        try:
            with _tracing.activate(self.tracer):
                with _tracing.span(f"server.{req.verb}"):
                    if req.verb == "insert":
                        rect = Rect(
                            req.args["xl"],
                            req.args["yl"],
                            req.args["xu"],
                            req.args["yu"],
                        )
                        obj_id, version = self.store.insert(rect)
                        result = {"id": obj_id, "snapshot": version}
                    else:
                        found, version = self.store.delete(req.args["id"])
                        result = {"found": found, "snapshot": version}
            payload = encode_response(req.id, result, trace=trace_id)
        except ReproError as exc:
            payload = encode_error(
                req.id, "invalid_query", str(exc), trace=trace_id
            )
        except Exception as exc:  # pragma: no cover - defensive
            self.registry.counter("server.errors.internal").inc()
            payload = encode_error(req.id, "internal", repr(exc), trace=trace_id)
        if result is not None:
            # Local apply succeeded: broadcast to every live replica and
            # verify the deterministic-replication contract (identical
            # version on every ack).
            await self._broadcast_write(req.verb, req.args, version)
        record = None
        if tel is not None:
            record = {
                "trace": trace_id,
                "id": req.id,
                "verb": req.verb,
                "args": req.args,
                "shards": [
                    k for k in range(self.shards)
                    if self._live_link(k) is not None
                ],
                "phases": {
                    "queue_ms": round((t0 - pending.enqueued_at) * 1e3, 3),
                    "kernel_ms": round((time.perf_counter() - t0) * 1e3, 3),
                },
            }
        self._respond(pending, payload, record=record)

    async def _broadcast_write(
        self, verb: str, args: dict[str, Any], version: int
    ) -> None:
        futs: dict[int, asyncio.Future] = {}
        seq = next(self._wseq)
        for k in range(self.shards):
            link = self._live_link(k)
            if link is not None:
                futs[k] = link.send_write(seq, verb, args)
        if not futs:
            return
        done, not_done = await asyncio.wait(
            futs.values(), timeout=self.config.write_timeout_s
        )
        if not_done:
            for k, fut in futs.items():
                if fut in not_done:
                    link = self._links[k]
                    if link is not None:
                        link.mark_dead()
            await asyncio.gather(*not_done, return_exceptions=True)
        for k, fut in futs.items():
            if fut.exception() is not None:
                continue  # link already marked dead
            ack = fut.result()
            if not ack.get("ok") or ack.get("version") != version:
                # Replica diverged from the deterministic contract —
                # quarantine it rather than serve inconsistent merges.
                self._m_epoch_mismatch.inc()
                link = self._links[k]
                if link is not None:
                    link.mark_dead()
            else:
                self._m_shard_epoch[k].set(float(version))

    # -- shutdown ----------------------------------------------------------

    async def shutdown(self) -> None:
        if self._stopped.is_set():
            return
        await super().shutdown()
        await self._stop_workers()

    async def _stop_workers(self) -> None:
        for k in range(self.shards):
            link = self._links[k]
            if link is not None and link.alive:
                link.send_shutdown()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 5.0
        for proc in self._procs:
            if proc is None:
                continue
            while proc.is_alive() and loop.time() < deadline:
                await asyncio.sleep(0.05)
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc is not None:
                await loop.run_in_executor(None, proc.join, 1.0)
        for k in range(self.shards):
            link = self._links[k]
            if link is not None:
                link.mark_dead()
        if self._internal_server is not None:
            self._internal_server.close()
            await self._internal_server.wait_closed()
            self._internal_server = None
        unlink_arena(self._seg)
        self._seg = None
