"""Intra-host sharded serving: tile-range shards over the packed base.

The paper's §VII-D result — the two-layer grid beating a distributed
framework by orders of magnitude because *coordination* dominates —
motivates this subsystem's shape: scale out on one host with the
cheapest possible coordination.  The domain is split into K contiguous
tile-id ranges over the packed CSR fused key (so each shard's rows are
one contiguous slab, per Aji et al.'s tile-space partitioning), worker
processes map the immutable columns from POSIX shared memory (zero
copy), and an asyncio router scatter-gathers queries to the shards whose
tile range intersects the query's footprint.

Modules
-------

:mod:`~repro.shard.partition`
    :class:`ShardBand` table + balanced band planning + footprint
    routing.
:mod:`~repro.shard.banded`
    :class:`BandedTwoLayerGrid` — the full index with every fused kernel
    clamped to an owned tile band; band unions partition the global
    result exactly (the duplicate-avoidance accounting is per tile, so
    banding commutes with it).
:mod:`~repro.shard.shm`
    Single-arena ``multiprocessing.shared_memory`` publication of the
    PackedStore columns + dataset columns + fast-path query matrix.
:mod:`~repro.shard.wire`
    The internal router<->worker NDJSON envelope protocol.
:mod:`~repro.shard.worker`
    The ShardWorker process entrypoint: a sequential asyncio loop over
    one connection back to the router.
:mod:`~repro.shard.router`
    :class:`ShardedQueryService` — the public NDJSON server in router
    mode (``python -m repro --serve HOST:PORT --shards K``).
"""

from repro.shard.banded import BandedTwoLayerGrid
from repro.shard.partition import (
    ShardBand,
    bands_for_range,
    plan_bands,
    shard_for_tile,
)
from repro.shard.router import ShardedQueryService

__all__ = [
    "BandedTwoLayerGrid",
    "ShardBand",
    "ShardedQueryService",
    "bands_for_range",
    "plan_bands",
    "shard_for_tile",
]
