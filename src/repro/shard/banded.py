"""A TwoLayerGrid whose kernels are clamped to one contiguous tile band.

Each shard worker holds the *full* index state — the whole packed base
mapped from shared memory, the whole delta overlay replicated by the
write broadcast — but answers queries only for the tiles its band owns.
Clamping (rather than physically slicing the columns) keeps every global
invariant intact:

* plans stay global — region decomposition, class scanning rules and
  the disk canonical-tile ``row_span`` are computed over the full grid,
  so each replica's *reporting* tile is the same tile it would report
  from in a single-process index;
* tile ownership partitions the tile space, and the two-layer scheme
  emits every result in exactly one tile (Lemmas 1-2 / §IV-E), so the
  union of band results over all shards equals the global result with
  no duplicates and no misses — the scatter-gather merge is pure
  concatenation;
* a band is a contiguous CSR row slab, so the stats-free fast kernel
  bands by clamping each per-grid-row slab intersection to
  ``[row_lo, row_hi)`` — still one broadcast comparison per row.

The clamp rides on three parent hooks: :meth:`~repro.core.two_layer
.TwoLayerGrid._region_tids` (fused window/within/chunk kernels),
:meth:`~repro.core.two_layer.TwoLayerGrid._tile_has_rows` (per-tile
paths and the tiles-based batch evaluators) and
:meth:`~repro.core.two_layer.TwoLayerGrid._fork_shell` (snapshot forks
keep the band).  kNN is *not* banded — its radius-doubling search is
routed to a single worker which runs it on :meth:`global_view`.
"""

from __future__ import annotations

import numpy as np

from repro.core.two_layer import _EMPTY_IDS, TwoLayerGrid
from repro.datasets.queries import DiskQuery
from repro.geometry.mbr import Rect
from repro.grid.base import GridPartitioner
from repro.shard.partition import ShardBand

__all__ = ["BandedTwoLayerGrid"]


class BandedTwoLayerGrid(TwoLayerGrid):
    """Full-state two-layer grid answering only for an owned tile band."""

    def __init__(
        self,
        grid: GridPartitioner,
        band: ShardBand,
        storage: "str | None" = None,
    ):
        super().__init__(grid, storage=storage)
        self.band = band

    def _fork_shell(self) -> "BandedTwoLayerGrid":
        return BandedTwoLayerGrid(self.grid, self.band, storage=self.storage)

    # -- band clamps --------------------------------------------------------

    def _region_tids(self, ax: int, bx: int, ay: int, by: int) -> np.ndarray:
        tids = super()._region_tids(ax, bx, ay, by)
        keep = (tids >= self.band.t_lo) & (tids < self.band.t_hi)
        if bool(keep.all()):
            return tids
        return tids[keep]

    def _tile_has_rows(self, tile_id: int) -> bool:
        if not self.band.owns_tile(tile_id):
            return False
        return super()._tile_has_rows(tile_id)

    def _delta_tiles_in_range(
        self, ix0: int, ix1: int, iy0: int, iy1: int
    ) -> list[int]:
        band = self.band
        return [
            tid
            for tid in super()._delta_tiles_in_range(ix0, ix1, iy0, iy1)
            if band.t_lo <= tid < band.t_hi
        ]

    def _disk_plan(
        self, query: DiskQuery
    ) -> tuple[
        dict[int, tuple[int, int]],
        list[tuple[int, tuple[int, ...], bool, int]],
    ]:
        # Keep the *global* row spans — the canonical-tile B/D dedup is
        # geometric and must see every disk-intersecting tile, owned or
        # not — but only scan jobs for owned tiles.
        row_span, jobs = super()._disk_plan(query)
        band = self.band
        return row_span, [j for j in jobs if band.t_lo <= j[0] < band.t_hi]

    # Stats-free twin of the parent fast kernel with the per-grid-row
    # slab clamped to the band's row range (same REP004 waiver contract
    # as the parent: window_query only routes here when stats is None).
    def _fused_window_fast(  # repro-lint: disable=REP004
        self,
        window: Rect,
        ix0: int,
        ix1: int,
        iy0: int,
        iy1: int,
    ) -> np.ndarray:
        q = self._fast_q
        if q is None:
            q = self._build_fast_q()
        tb = self._tile_row_bounds
        ids = self._store.ids
        ge = np.greater_equal
        reduce_and = np.logical_and.reduce
        bounds = np.array(
            [window.xl, -window.xu, window.yl, -window.yu,
             float(-ix0), float(-iy0)]
        ).reshape(6, 1)
        nx = self.grid.nx
        row_lo = self.band.row_lo
        row_hi = self.band.row_hi
        lo = iy0 * nx + ix0
        width = ix1 - ix0 + 1
        pieces: list[np.ndarray] = []
        for _ in range(iy0, iy1 + 1):
            # Owned tiles of this grid row's slab are themselves one
            # contiguous sub-slab: clamp to the band's row range.
            s0 = tb[lo]
            s1 = tb[lo + width]
            lo += nx
            if s0 < row_lo:
                s0 = row_lo
            if s1 > row_hi:
                s1 = row_hi
            if s0 >= s1:
                continue
            keep = reduce_and(ge(q[:, s0:s1], bounds), axis=0)
            pieces.append(ids[s0:s1][keep])
        if not pieces:
            return _EMPTY_IDS
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces)

    def _on_window_result(self, window: Rect, out: np.ndarray) -> None:
        # A band's partial result would falsely fail the global naive
        # reference; the router cross-checks the *merged* result.
        return None

    # -- escape hatch -------------------------------------------------------

    def global_view(self) -> TwoLayerGrid:
        """A plain (unbanded) twin sharing every column by reference.

        Used for kNN: the radius-doubling search needs global visibility
        (the k-th distance bound is a global property), so the router
        sends each knn to one worker, which answers from this view.
        Cheap enough to build per call — six attribute copies.
        """
        twin = TwoLayerGrid(self.grid, storage=self.storage)
        twin._store = self._store
        twin._tiles = self._tiles
        twin._fast_q = self._fast_q
        twin._tile_row_bounds = self._tile_row_bounds
        twin._n_objects = self._n_objects
        return twin
