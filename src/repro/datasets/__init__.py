"""Datasets: the container type, synthetic generators and query workloads.

* :class:`RectDataset` — column-oriented MBR collection all indexes consume.
* :mod:`repro.datasets.synthetic` — Table IV uniform / zipfian rectangles.
* :mod:`repro.datasets.tiger` — scaled stand-ins for the Table III TIGER
  datasets (ROADS / EDGES / TIGER), optionally with exact geometries.
* :mod:`repro.datasets.queries` — window and disk query workloads.
"""

from repro.datasets.dataset import RectDataset
from repro.datasets.io import (
    load_csv,
    load_dataset,
    load_wkt,
    save_csv,
    save_dataset,
    save_wkt,
)
from repro.datasets.queries import (
    DEFAULT_RELATIVE_AREA_PERCENT,
    RELATIVE_AREAS_PERCENT,
    DiskQuery,
    generate_disk_queries,
    generate_window_queries,
)
from repro.datasets.synthetic import (
    ASPECT_RATIO_RANGE,
    TABLE4_AREAS,
    TABLE4_CARDINALITIES,
    generate_synthetic,
    generate_uniform_rects,
    generate_zipf_rects,
)
from repro.datasets.tiger import (
    TIGER_SPECS,
    TigerSpec,
    generate_tiger_standin,
    load_edges,
    load_roads,
    load_tiger,
)

__all__ = [
    "RectDataset",
    "save_dataset",
    "load_dataset",
    "save_csv",
    "load_csv",
    "save_wkt",
    "load_wkt",
    "DiskQuery",
    "generate_window_queries",
    "generate_disk_queries",
    "RELATIVE_AREAS_PERCENT",
    "DEFAULT_RELATIVE_AREA_PERCENT",
    "generate_uniform_rects",
    "generate_zipf_rects",
    "generate_synthetic",
    "ASPECT_RATIO_RANGE",
    "TABLE4_AREAS",
    "TABLE4_CARDINALITIES",
    "TigerSpec",
    "TIGER_SPECS",
    "generate_tiger_standin",
    "load_roads",
    "load_edges",
    "load_tiger",
]
