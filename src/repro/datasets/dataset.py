"""Column-oriented container for a collection of object MBRs.

Every index in this library consumes a :class:`RectDataset`: four parallel
NumPy arrays holding the MBR coordinates, with the object id equal to the
row position.  Exact geometries (for the refinement step, Section V) are
stored *once*, in a separate list addressed by id, exactly as the paper
prescribes ("the actual geometry of each object is stored only once in an
array ... and retrieved on-demand, given the object's id", Section III).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.geometry.mbr import Rect
from repro.geometry.predicates import Geometry, geometry_mbr

__all__ = ["RectDataset"]


class RectDataset:
    """An immutable set of ``n`` object MBRs in structure-of-arrays layout.

    Attributes
    ----------
    xl, yl, xu, yu:
        ``float64`` arrays of shape ``(n,)``; row ``i`` is object ``i``.
    geometries:
        optional list of exact geometries (``None`` for pure-MBR datasets),
        used by the refinement step.
    """

    __slots__ = ("xl", "yl", "xu", "yu", "geometries", "_mbr")

    def __init__(
        self,
        xl: np.ndarray,
        yl: np.ndarray,
        xu: np.ndarray,
        yu: np.ndarray,
        geometries: "list[Geometry] | None" = None,
    ):
        arrays = [np.ascontiguousarray(a, dtype=np.float64) for a in (xl, yl, xu, yu)]
        n = arrays[0].shape[0]
        for a in arrays:
            if a.ndim != 1 or a.shape[0] != n:
                raise DatasetError("coordinate arrays must be 1-D and equally long")
        if not all(np.isfinite(a).all() for a in arrays):
            raise DatasetError("dataset contains non-finite coordinates")
        if np.any(arrays[0] > arrays[2]) or np.any(arrays[1] > arrays[3]):
            raise DatasetError("dataset contains inverted rectangles (l > u)")
        if geometries is not None and len(geometries) != n:
            raise DatasetError(
                f"got {len(geometries)} geometries for {n} rectangles"
            )
        self.xl, self.yl, self.xu, self.yu = arrays
        self.geometries = geometries
        self._mbr: Rect | None = None

    # -- construction -----------------------------------------------------

    @classmethod
    def from_rects(
        cls, rects: Sequence[Rect], geometries: "list[Geometry] | None" = None
    ) -> "RectDataset":
        """Build a dataset from :class:`Rect` objects (ids = positions)."""
        n = len(rects)
        xl = np.empty(n)
        yl = np.empty(n)
        xu = np.empty(n)
        yu = np.empty(n)
        for i, r in enumerate(rects):
            xl[i] = r.xl
            yl[i] = r.yl
            xu[i] = r.xu
            yu[i] = r.yu
        return cls(xl, yl, xu, yu, geometries)

    @classmethod
    def from_geometries(cls, geometries: Iterable[Geometry]) -> "RectDataset":
        """Build a dataset whose MBRs are derived from exact geometries."""
        geoms = list(geometries)
        mbrs = [geometry_mbr(g) for g in geoms]
        return cls.from_rects(mbrs, geometries=geoms)

    # -- basic protocol -----------------------------------------------------

    def __len__(self) -> int:
        return self.xl.shape[0]

    def __iter__(self) -> Iterator[Rect]:
        for i in range(len(self)):
            yield self.rect(i)

    def __repr__(self) -> str:
        return f"RectDataset(n={len(self)}, geometries={self.geometries is not None})"

    def rect(self, i: int) -> Rect:
        """Materialise the MBR of object ``i`` as a :class:`Rect`."""
        return Rect(
            float(self.xl[i]), float(self.yl[i]), float(self.xu[i]), float(self.yu[i])
        )

    def geometry(self, i: int) -> Geometry:
        """Exact geometry of object ``i`` (its MBR when none was stored)."""
        if self.geometries is None:
            return self.rect(i)
        return self.geometries[i]

    # -- dataset-level measures -----------------------------------------------

    def mbr(self) -> Rect:
        """MBR of the whole dataset (cached)."""
        if self._mbr is None:
            if len(self) == 0:
                raise DatasetError("empty dataset has no MBR")
            self._mbr = Rect(
                float(self.xl.min()),
                float(self.yl.min()),
                float(self.xu.max()),
                float(self.yu.max()),
            )
        return self._mbr

    def average_extents(self) -> tuple[float, float]:
        """Average MBR width and height (the Table III statistics)."""
        if len(self) == 0:
            raise DatasetError("empty dataset has no average extents")
        return (
            float(np.mean(self.xu - self.xl)),
            float(np.mean(self.yu - self.yl)),
        )

    # -- manipulation --------------------------------------------------------

    def slice(self, start: int, stop: int) -> "RectDataset":
        """A dataset view of rows ``[start, stop)`` (ids renumbered from 0)."""
        geoms = None if self.geometries is None else self.geometries[start:stop]
        return RectDataset(
            self.xl[start:stop],
            self.yl[start:stop],
            self.xu[start:stop],
            self.yu[start:stop],
            geoms,
        )

    def take(self, ids: np.ndarray) -> "RectDataset":
        """A dataset of the given rows (ids renumbered from 0)."""
        ids = np.asarray(ids, dtype=np.int64)
        geoms = (
            None
            if self.geometries is None
            else [self.geometries[int(i)] for i in ids]
        )
        return RectDataset(
            self.xl[ids], self.yl[ids], self.xu[ids], self.yu[ids], geoms
        )

    # -- brute-force oracles (ground truth for tests and benches) -------------

    def brute_force_window(self, window: Rect) -> np.ndarray:
        """Ids of all MBRs intersecting ``window`` (sorted)."""
        mask = (
            (self.xu >= window.xl)
            & (self.xl <= window.xu)
            & (self.yu >= window.yl)
            & (self.yl <= window.yu)
        )
        return np.flatnonzero(mask).astype(np.int64)

    def brute_force_disk(self, cx: float, cy: float, radius: float) -> np.ndarray:
        """Ids of all MBRs within ``radius`` of ``(cx, cy)`` (sorted)."""
        dx = np.maximum(np.maximum(self.xl - cx, 0.0), cx - self.xu)
        dy = np.maximum(np.maximum(self.yl - cy, 0.0), cy - self.yu)
        mask = dx * dx + dy * dy <= radius * radius
        return np.flatnonzero(mask).astype(np.int64)
