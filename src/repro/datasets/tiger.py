"""Synthetic stand-ins for the paper's TIGER 2015 datasets (Table III).

The paper evaluates on three real datasets that we cannot redistribute:

=======  ===========  =====  ============  ============
dataset  type         card.  avg x-extent  avg y-extent
=======  ===========  =====  ============  ============
ROADS    linestrings  20M    0.00001173    0.00000915
EDGES    polygons     70M    0.00000491    0.00000383
TIGER    mixed        98M    0.00000740    0.00000576
=======  ===========  =====  ============  ============

This module generates *scaled-down synthetic stand-ins* that preserve the
properties the evaluated algorithms are sensitive to:

* the published average MBR extent per axis (Table III, last two columns),
  with log-normal variability around the mean;
* a heavily clustered, non-uniform spatial distribution (objects follow
  population-like cluster centres, as real road networks do);
* the per-dataset geometry type (linestrings / polygons / mixed), so the
  refinement-step experiments (Fig. 6) exercise real exact-geometry tests;
* the relative cardinalities 20 : 70 : 98, scaled by a user-chosen factor.

See DESIGN.md ("Substitutions") for why this preserves the experiments'
behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.errors import DatasetError
from repro.geometry.linestring import LineString
from repro.geometry.polygon import Polygon

__all__ = ["TigerSpec", "TIGER_SPECS", "generate_tiger_standin", "load_roads", "load_edges", "load_tiger"]


@dataclass(frozen=True)
class TigerSpec:
    """Published statistics of one Table III dataset."""

    name: str
    kind: str  # "linestring", "polygon" or "mixed"
    paper_cardinality: int
    avg_x_extent: float
    avg_y_extent: float


TIGER_SPECS: dict[str, TigerSpec] = {
    "ROADS": TigerSpec("ROADS", "linestring", 20_000_000, 0.00001173, 0.00000915),
    "EDGES": TigerSpec("EDGES", "polygon", 70_000_000, 0.00000491, 0.00000383),
    "TIGER": TigerSpec("TIGER", "mixed", 98_000_000, 0.00000740, 0.00000576),
}

#: default scale: paper cardinality / 200 (20M -> 100K objects).
DEFAULT_SCALE = 1.0 / 200.0


def _cluster_centres(
    n: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Clustered object centres mimicking a road-network density map.

    A two-level Gaussian-mixture: a few hundred metro areas, each with
    power-law weight, plus a 10% uniform rural background.
    """
    n_clusters = max(8, int(math.sqrt(n)))
    centres_x = rng.random(n_clusters)
    centres_y = rng.random(n_clusters)
    # Power-law cluster popularity (Zipf-ish, like city sizes).
    weights = 1.0 / np.arange(1, n_clusters + 1, dtype=np.float64)
    weights /= weights.sum()
    sigma = rng.uniform(0.002, 0.03, size=n_clusters)

    n_rural = n // 10
    n_urban = n - n_rural
    choice = rng.choice(n_clusters, size=n_urban, p=weights)
    cx = np.concatenate(
        [centres_x[choice] + rng.normal(0.0, sigma[choice]), rng.random(n_rural)]
    )
    cy = np.concatenate(
        [centres_y[choice] + rng.normal(0.0, sigma[choice]), rng.random(n_rural)]
    )
    return np.clip(cx, 0.0, 1.0), np.clip(cy, 0.0, 1.0)


def _extent_samples(
    n: int, mean: float, rng: np.random.Generator
) -> np.ndarray:
    """Log-normal extents with the requested mean (real extents are skewed)."""
    sigma = 0.75
    mu = math.log(mean) - sigma * sigma / 2.0
    return rng.lognormal(mean=mu, sigma=sigma, size=n)


def _mbrs_only(
    n: int, spec: TigerSpec, rng: np.random.Generator
) -> RectDataset:
    cx, cy = _cluster_centres(n, rng)
    w = _extent_samples(n, spec.avg_x_extent, rng)
    h = _extent_samples(n, spec.avg_y_extent, rng)
    half_w = w / 2.0
    half_h = h / 2.0
    cx = np.clip(cx, half_w, 1.0 - half_w)
    cy = np.clip(cy, half_h, 1.0 - half_h)
    return RectDataset(cx - half_w, cy - half_h, cx + half_w, cy + half_h)


def _linestring_in_box(
    xl: float, yl: float, xu: float, yu: float, rng: np.random.Generator
) -> LineString:
    """A road-segment-like polyline spanning the given MBR exactly."""
    n_vertices = int(rng.integers(2, 7))
    ts = np.sort(rng.random(n_vertices))
    ts[0], ts[-1] = 0.0, 1.0  # span the box in x
    ys = rng.random(n_vertices)
    # Force the y-extremes so the MBR is exactly the requested box.
    lo = int(rng.integers(0, n_vertices))
    hi = int(rng.integers(0, n_vertices))
    if lo == hi:
        hi = (hi + 1) % n_vertices
    ys[lo], ys[hi] = 0.0, 1.0
    verts = [(xl + t * (xu - xl), yl + y * (yu - yl)) for t, y in zip(ts, ys)]
    return LineString(verts)


def _polygon_in_box(
    xl: float, yl: float, xu: float, yu: float, rng: np.random.Generator
) -> Polygon:
    """A convex parcel-like polygon inscribed in the given MBR."""
    n_vertices = int(rng.integers(4, 9))
    angles = np.sort(rng.uniform(0.0, 2.0 * math.pi, size=n_vertices))
    # Convex polygon on an ellipse inscribed in the box: its MBR is the box.
    cx = (xl + xu) / 2.0
    cy = (yl + yu) / 2.0
    rx = (xu - xl) / 2.0
    ry = (yu - yl) / 2.0
    # Guarantee MBR tightness by pinning four extreme angles.
    angles[0] = 0.0
    angles[n_vertices // 4] = math.pi / 2.0
    angles[n_vertices // 2] = math.pi
    angles[3 * n_vertices // 4] = 3.0 * math.pi / 2.0
    angles = np.sort(angles)
    verts = [
        (cx + rx * math.cos(a), cy + ry * math.sin(a)) for a in angles
    ]
    return Polygon(verts)


def generate_tiger_standin(
    name: str,
    scale: float = DEFAULT_SCALE,
    with_geometries: bool = False,
    seed: "int | None" = None,
) -> RectDataset:
    """Generate the stand-in for Table III dataset ``name``.

    Parameters
    ----------
    name:
        ``"ROADS"``, ``"EDGES"`` or ``"TIGER"``.
    scale:
        fraction of the paper's cardinality to generate (default 1/200).
    with_geometries:
        when true, attach exact geometries (linestrings / polygons per the
        dataset type) whose MBRs equal the generated rectangles; required
        by the refinement experiments, slower to build.
    """
    spec = TIGER_SPECS.get(name.upper())
    if spec is None:
        raise DatasetError(
            f"unknown TIGER dataset {name!r}; expected one of {sorted(TIGER_SPECS)}"
        )
    if scale <= 0:
        raise DatasetError(f"scale must be > 0, got {scale}")
    n = max(1, int(round(spec.paper_cardinality * scale)))
    rng = np.random.default_rng(seed)
    data = _mbrs_only(n, spec, rng)
    if not with_geometries:
        return data

    geometries = []
    degenerate_eps = 1e-12
    for i in range(n):
        xl = float(data.xl[i])
        yl = float(data.yl[i])
        xu = max(float(data.xu[i]), xl + degenerate_eps)
        yu = max(float(data.yu[i]), yl + degenerate_eps)
        if spec.kind == "linestring":
            make_line = True
        elif spec.kind == "polygon":
            make_line = False
        else:  # mixed: 20M/98M linestrings, rest polygons (paper's merge)
            make_line = rng.random() < (20.0 / 98.0)
        if make_line:
            geometries.append(_linestring_in_box(xl, yl, xu, yu, rng))
        else:
            geometries.append(_polygon_in_box(xl, yl, xu, yu, rng))
    return RectDataset(data.xl, data.yl, data.xu, data.yu, geometries)


def load_roads(scale: float = DEFAULT_SCALE, with_geometries: bool = False,
               seed: "int | None" = 20150) -> RectDataset:
    """ROADS stand-in (linestrings), deterministic by default."""
    return generate_tiger_standin("ROADS", scale, with_geometries, seed)


def load_edges(scale: float = DEFAULT_SCALE, with_geometries: bool = False,
               seed: "int | None" = 20151) -> RectDataset:
    """EDGES stand-in (polygons), deterministic by default."""
    return generate_tiger_standin("EDGES", scale, with_geometries, seed)


def load_tiger(scale: float = DEFAULT_SCALE, with_geometries: bool = False,
               seed: "int | None" = 20152) -> RectDataset:
    """TIGER stand-in (mixed linestrings + polygons), deterministic."""
    return generate_tiger_standin("TIGER", scale, with_geometries, seed)
