"""Query-workload generation (Section VII, "Queries").

The paper generates window and disk queries that (i) apply on non-empty
areas of the map, i.e. always return results, and (ii) follow the spatial
distribution of the data.  Both properties are obtained here by centring
each query on the centre of a randomly drawn data object.  Query size is
controlled by the *relative area*: the query area as a percentage of the
entire (unit-square) data space, swept over {0.01, 0.05, 0.1, 0.5, 1}%
with a default of 0.1%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.errors import InvalidQueryError
from repro.geometry.mbr import Rect

__all__ = [
    "DiskQuery",
    "RELATIVE_AREAS_PERCENT",
    "DEFAULT_RELATIVE_AREA_PERCENT",
    "generate_window_queries",
    "generate_disk_queries",
]

#: query relative areas (percent of the map) swept in Figs. 8-10.
RELATIVE_AREAS_PERCENT = (0.01, 0.05, 0.1, 0.5, 1.0)

#: default query relative area (percent of the map).
DEFAULT_RELATIVE_AREA_PERCENT = 0.1


@dataclass(frozen=True, slots=True)
class DiskQuery:
    """A disk (distance) range query: centre point and radius."""

    cx: float
    cy: float
    radius: float

    def __post_init__(self) -> None:
        if not (
            math.isfinite(self.cx)
            and math.isfinite(self.cy)
            and math.isfinite(self.radius)
        ):
            raise InvalidQueryError(f"non-finite disk query: {self}")
        if self.radius < 0:
            raise InvalidQueryError(f"negative disk radius: {self.radius}")

    def mbr(self) -> Rect:
        return Rect(
            self.cx - self.radius,
            self.cy - self.radius,
            self.cx + self.radius,
            self.cy + self.radius,
        )

    @property
    def relative_area(self) -> float:
        """Disk area as a fraction of the unit map."""
        return math.pi * self.radius * self.radius


def _query_centres(
    data: RectDataset, n: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Query centres drawn from the data distribution (object centres)."""
    if len(data) == 0:
        raise InvalidQueryError("cannot generate queries over an empty dataset")
    picks = rng.integers(0, len(data), size=n)
    cx = (data.xl[picks] + data.xu[picks]) / 2.0
    cy = (data.yl[picks] + data.yu[picks]) / 2.0
    return cx, cy


def generate_window_queries(
    data: RectDataset,
    n: int,
    relative_area_percent: float = DEFAULT_RELATIVE_AREA_PERCENT,
    seed: "int | None" = None,
) -> list[Rect]:
    """``n`` square window queries of the given relative area.

    Each window is centred on the centre of a random data object, so every
    query hits a non-empty region, and the query workload inherits the data
    distribution — both Section VII requirements.  Windows are clamped into
    the unit square without shrinking.
    """
    if n < 0:
        raise InvalidQueryError(f"query count must be >= 0, got {n}")
    if relative_area_percent <= 0 or relative_area_percent > 100:
        raise InvalidQueryError(
            f"relative area must be in (0, 100] percent, got {relative_area_percent}"
        )
    rng = np.random.default_rng(seed)
    side = math.sqrt(relative_area_percent / 100.0)
    half = side / 2.0
    cx, cy = _query_centres(data, n, rng)
    cx = np.clip(cx, half, 1.0 - half)
    cy = np.clip(cy, half, 1.0 - half)
    return [
        Rect(float(x - half), float(y - half), float(x + half), float(y + half))
        for x, y in zip(cx, cy)
    ]


def generate_disk_queries(
    data: RectDataset,
    n: int,
    relative_area_percent: float = DEFAULT_RELATIVE_AREA_PERCENT,
    seed: "int | None" = None,
) -> list[DiskQuery]:
    """``n`` disk queries whose disk area is the given fraction of the map.

    The radius solves ``pi * r**2 = relative_area``; centres follow the
    data distribution like window queries.
    """
    if n < 0:
        raise InvalidQueryError(f"query count must be >= 0, got {n}")
    if relative_area_percent <= 0 or relative_area_percent > 100:
        raise InvalidQueryError(
            f"relative area must be in (0, 100] percent, got {relative_area_percent}"
        )
    rng = np.random.default_rng(seed)
    radius = math.sqrt(relative_area_percent / 100.0 / math.pi)
    cx, cy = _query_centres(data, n, rng)
    cx = np.clip(cx, radius, 1.0 - radius)
    cy = np.clip(cy, radius, 1.0 - radius)
    return [DiskQuery(float(x), float(y), radius) for x, y in zip(cx, cy)]
