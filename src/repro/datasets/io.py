"""Dataset persistence and interop.

* ``.npz`` archives (:func:`save_dataset` / :func:`load_dataset`) — fast
  binary storage of the MBR columns; exact geometries are not persisted
  (they are cheap to regenerate with a fixed seed).
* CSV (:func:`save_csv` / :func:`load_csv`) — plain ``xl,yl,xu,yu`` rows
  for interop with spreadsheets and other tools.
* WKT (:func:`save_wkt` / :func:`load_wkt`) — one geometry per line, the
  format real TIGER extracts ship in; loading derives the MBR columns
  and keeps the exact geometries for the refinement step.
"""

from __future__ import annotations

import csv
import os

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.errors import DatasetError
from repro.geometry.wkt import geometry_from_wkt, geometry_to_wkt

__all__ = [
    "save_dataset",
    "load_dataset",
    "save_csv",
    "load_csv",
    "save_wkt",
    "load_wkt",
]

_FORMAT_VERSION = 1


def save_dataset(data: RectDataset, path: "str | os.PathLike[str]") -> None:
    """Write the MBR columns of ``data`` to ``path`` (npz format)."""
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        xl=data.xl,
        yl=data.yl,
        xu=data.xu,
        yu=data.yu,
    )


def load_dataset(path: "str | os.PathLike[str]") -> RectDataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    with np.load(path) as archive:
        try:
            version = int(archive["version"])
            columns = tuple(archive[k] for k in ("xl", "yl", "xu", "yu"))
        except KeyError as exc:
            raise DatasetError(f"{path}: not a repro dataset archive") from exc
    if version != _FORMAT_VERSION:
        raise DatasetError(
            f"{path}: unsupported dataset format version {version}"
        )
    return RectDataset(*columns)


def save_csv(data: RectDataset, path: "str | os.PathLike[str]") -> None:
    """Write ``xl,yl,xu,yu`` rows (with a header) to a CSV file."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["xl", "yl", "xu", "yu"])
        for i in range(len(data)):
            writer.writerow(
                [
                    repr(float(data.xl[i])),
                    repr(float(data.yl[i])),
                    repr(float(data.xu[i])),
                    repr(float(data.yu[i])),
                ]
            )


def load_csv(path: "str | os.PathLike[str]") -> RectDataset:
    """Read a CSV of ``xl,yl,xu,yu`` rows (header optional)."""
    columns: list[list[float]] = [[], [], [], []]
    with open(path, newline="") as handle:
        for row_no, row in enumerate(csv.reader(handle)):
            if not row or (row_no == 0 and row[0].strip().lower() == "xl"):
                continue
            if len(row) < 4:
                raise DatasetError(
                    f"{path}:{row_no + 1}: expected 4 columns, got {len(row)}"
                )
            try:
                values = [float(v) for v in row[:4]]
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{row_no + 1}: non-numeric coordinate"
                ) from exc
            for col, value in zip(columns, values):
                col.append(value)
    return RectDataset(*(np.asarray(c) for c in columns))


def save_wkt(data: RectDataset, path: "str | os.PathLike[str]") -> None:
    """Write one WKT geometry per line (exact geometries, or MBR rings)."""
    with open(path, "w") as handle:
        for i in range(len(data)):
            handle.write(geometry_to_wkt(data.geometry(i)))
            handle.write("\n")


def load_wkt(path: "str | os.PathLike[str]") -> RectDataset:
    """Read one WKT geometry per line; MBRs are derived, geometries kept."""
    geometries = []
    with open(path) as handle:
        for line_no, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                geometries.append(geometry_from_wkt(line))
            except DatasetError:
                raise
            except Exception as exc:
                raise DatasetError(f"{path}:{line_no + 1}: {exc}") from exc
    if not geometries:
        raise DatasetError(f"{path}: no geometries found")
    return RectDataset.from_geometries(geometries)
