"""Synthetic rectangle generators following Table IV of the paper.

The paper's synthetic datasets place equal-area rectangles in the unit
square under a *uniform* or *zipfian* (a = 1) spatial distribution, with
the width-to-height ratio of every rectangle drawn uniformly from
``[0.25, 4]`` "to avoid unnaturally narrow rectangles".  Areas range over
``{10**-inf, 1e-14, 1e-12, 1e-10, 1e-8, 1e-6}`` where ``10**-inf`` denotes
degenerate point-like rectangles.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import RectDataset
from repro.errors import DatasetError

__all__ = [
    "generate_uniform_rects",
    "generate_zipf_rects",
    "generate_synthetic",
    "ASPECT_RATIO_RANGE",
    "TABLE4_AREAS",
    "TABLE4_CARDINALITIES",
]

#: width/height ratio range used for all synthetic rectangles (Table IV).
ASPECT_RATIO_RANGE = (0.25, 4.0)

#: data rectangle areas swept in Fig. 9 (0.0 encodes the paper's 10**-inf).
TABLE4_AREAS = (0.0, 1e-14, 1e-12, 1e-10, 1e-8, 1e-6)

#: dataset cardinalities of Table IV (the paper's, in millions).
TABLE4_CARDINALITIES = (1_000_000, 5_000_000, 10_000_000, 50_000_000, 100_000_000)

#: number of conceptual cells for the zipfian inverse-CDF mapping.
_ZIPF_CELLS = 10_000


def _extents(
    n: int, area: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Per-rectangle (width, height) with fixed area and random aspect ratio."""
    if area < 0:
        raise DatasetError(f"rectangle area must be >= 0, got {area}")
    if area == 0.0:
        zeros = np.zeros(n)
        return zeros, zeros.copy()
    ratio = rng.uniform(*ASPECT_RATIO_RANGE, size=n)
    widths = np.sqrt(area * ratio)
    heights = np.sqrt(area / ratio)
    return widths, heights


def _finalise(
    cx: np.ndarray, cy: np.ndarray, widths: np.ndarray, heights: np.ndarray
) -> RectDataset:
    """Clamp rectangle centres so every rectangle stays inside [0, 1]^2."""
    half_w = widths / 2.0
    half_h = heights / 2.0
    cx = np.clip(cx, half_w, 1.0 - half_w)
    cy = np.clip(cy, half_h, 1.0 - half_h)
    return RectDataset(cx - half_w, cy - half_h, cx + half_w, cy + half_h)


def generate_uniform_rects(
    n: int, area: float = 1e-10, seed: "int | None" = None
) -> RectDataset:
    """``n`` equal-area rectangles with uniformly distributed centres."""
    if n < 0:
        raise DatasetError(f"cardinality must be >= 0, got {n}")
    rng = np.random.default_rng(seed)
    widths, heights = _extents(n, area, rng)
    cx = rng.random(n)
    cy = rng.random(n)
    return _finalise(cx, cy, widths, heights)


def _zipf_coordinates(n: int, a: float, rng: np.random.Generator) -> np.ndarray:
    """Coordinates in [0, 1) whose cell occupancy follows a Zipf law.

    The unit interval is split into ``_ZIPF_CELLS`` conceptual cells and
    cell ``i`` (1-based) receives probability proportional to ``1 / i**a``.
    Sampling inverts the (exact, discrete) CDF; positions are uniform
    within the chosen cell.  For ``a = 1`` (paper default) this matches the
    classic Zipf spatial skew used by spatial data generators.
    """
    ranks = np.arange(1, _ZIPF_CELLS + 1, dtype=np.float64)
    weights = 1.0 / ranks**a
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.random(n)
    cells = np.searchsorted(cdf, u, side="left")
    return (cells + rng.random(n)) / _ZIPF_CELLS


def generate_zipf_rects(
    n: int, area: float = 1e-10, a: float = 1.0, seed: "int | None" = None
) -> RectDataset:
    """``n`` equal-area rectangles with zipfian-skewed centres (Table IV).

    Each coordinate is drawn independently from the Zipf-cell distribution,
    concentrating objects towards the origin corner of the map, the usual
    construction for zipfian spatial benchmarks.
    """
    if n < 0:
        raise DatasetError(f"cardinality must be >= 0, got {n}")
    if a <= 0:
        raise DatasetError(f"zipf parameter must be > 0, got {a}")
    rng = np.random.default_rng(seed)
    widths, heights = _extents(n, area, rng)
    cx = _zipf_coordinates(n, a, rng)
    cy = _zipf_coordinates(n, a, rng)
    return _finalise(cx, cy, widths, heights)


def generate_synthetic(
    n: int,
    area: float = 1e-10,
    distribution: str = "uniform",
    seed: "int | None" = None,
) -> RectDataset:
    """Dispatch on Table IV's ``distribution`` parameter."""
    if distribution == "uniform":
        return generate_uniform_rects(n, area=area, seed=seed)
    if distribution == "zipf":
        return generate_zipf_rects(n, area=area, seed=seed)
    raise DatasetError(
        f"unknown distribution {distribution!r}; expected 'uniform' or 'zipf'"
    )
