"""Exact nearest-neighbour search over non-point geometries.

Scenario: given road segments (linestrings), find the k segments truly
nearest to an incident location — not the ones whose *bounding boxes*
are nearest. A long diagonal road's MBR can contain a point the road
itself passes nowhere near, so MBR ranking lies; the exact
(filter-and-refine) kNN re-ranks with true geometry distances.

Also demonstrates WKT interop: the dataset round-trips through a WKT
file like a real TIGER extract would.

Run:  python examples/nearest_facilities.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import RefinementEngine, TwoLayerGrid, knn_query
from repro.datasets import generate_tiger_standin, load_wkt, save_wkt
from repro.geometry import geometry_distance_to_point


def main() -> None:
    roads = generate_tiger_standin(
        "ROADS", scale=1 / 2000, with_geometries=True, seed=2015
    )
    print(f"{len(roads):,} road segments (linestrings)")

    # WKT round-trip, as if loading a real extract.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "roads.wkt"
        save_wkt(roads, path)
        size_mb = path.stat().st_size / 1e6
        roads = load_wkt(path)
        print(f"round-tripped through WKT ({size_mb:.1f} MB)\n")

    index = TwoLayerGrid.build(roads, partitions_per_dim=64)
    engine = RefinementEngine(index, roads)

    rng = np.random.default_rng(99)
    incidents = rng.random((200, 2))
    k = 5

    # MBR-level kNN (filtering metric) vs exact geometry kNN.
    t0 = time.perf_counter()
    mbr_answers = [
        knn_query(index, roads, float(x), float(y), k) for x, y in incidents
    ]
    t_mbr = time.perf_counter() - t0

    t0 = time.perf_counter()
    exact_answers = [engine.knn(float(x), float(y), k) for x, y in incidents]
    t_exact = time.perf_counter() - t0

    reranked = sum(
        1
        for a, b in zip(mbr_answers, exact_answers)
        if a.tolist() != b.tolist()
    )
    print(f"k={k} nearest over {len(incidents)} incidents:")
    print(f"  MBR-level kNN:   {len(incidents) / t_mbr:8,.0f} queries/sec")
    print(f"  exact kNN:       {len(incidents) / t_exact:8,.0f} queries/sec")
    print(f"  exact ranking differs from MBR ranking for {reranked} incidents")

    # Show one incident in detail.
    x, y = incidents[0]
    ids = exact_answers[0]
    print(f"\nincident at ({x:.3f}, {y:.3f}) — nearest road segments:")
    for rank, oid in enumerate(ids, 1):
        dist = geometry_distance_to_point(roads.geometries[int(oid)], x, y)
        print(f"  #{rank}: segment {int(oid):>6} at exact distance {dist:.5f}")


if __name__ == "__main__":
    main()
