"""Index shoot-out: every method in the paper's Table V on one dataset.

Builds all nine compared indices over the same EDGES-like dataset,
verifies they return identical window-query answers, and prints a
Table V-style build/size/throughput summary.

Run:  python examples/index_shootout.py
"""

from __future__ import annotations

import time

from repro import (
    BlockIndex,
    MXCIFQuadTree,
    OneLayerGrid,
    QuadTree,
    RStarTree,
    RTree,
    TwoLayerGrid,
    TwoLayerPlusGrid,
    TwoLayerQuadTree,
)
from repro.datasets import generate_tiger_standin, generate_window_queries

METHODS = [
    ("2-layer", lambda d: TwoLayerGrid.build(d, partitions_per_dim=64)),
    ("2-layer+", lambda d: TwoLayerPlusGrid.build(d, partitions_per_dim=64)),
    ("1-layer", lambda d: OneLayerGrid.build(d, partitions_per_dim=64)),
    ("quad-tree", QuadTree.build),
    ("quad-tree 2-layer", TwoLayerQuadTree.build),
    ("R-tree (STR)", RTree.build),
    ("R*-tree", RStarTree.build),
    ("BLOCK", BlockIndex.build),
    ("MXCIF quad-tree", MXCIFQuadTree.build),
]


def main() -> None:
    data = generate_tiger_standin("EDGES", scale=1 / 2000, seed=2015)
    queries = generate_window_queries(data, 400, relative_area_percent=0.1, seed=9)
    reference: "set[int] | None" = None

    print(f"dataset: EDGES stand-in, {len(data):,} polygon MBRs")
    print(f"workload: {len(queries)} window queries, 0.1% relative area\n")
    print(f"{'method':<18} {'build[s]':>9} {'entries':>9} {'q/s':>10}")
    print("-" * 50)

    for name, build in METHODS:
        t0 = time.perf_counter()
        index = build(data)
        build_s = time.perf_counter() - t0

        # Cross-validate: every index must agree on the first query.
        got = set(index.window_query(queries[0]).tolist())
        if reference is None:
            reference = got
        assert got == reference, f"{name} disagrees with the other indexes!"

        t0 = time.perf_counter()
        for w in queries:
            index.window_query(w)
        qps = len(queries) / (time.perf_counter() - t0)

        entries = getattr(index, "replica_count", len(data))
        print(f"{name:<18} {build_s:>9.2f} {entries:>9,} {qps:>10,.0f}")

    print(
        "\nAll nine indexes returned identical answers; the ordering above "
        "mirrors the paper's Table V."
    )


if __name__ == "__main__":
    main()
