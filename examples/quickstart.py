"""Quickstart: index a rectangle collection and run range queries.

Builds the paper's 2-layer grid over a synthetic dataset, runs window and
disk queries, and contrasts the work done against the 1-layer baseline
(reference-point deduplication) on the same grid.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import OneLayerGrid, Rect, TwoLayerGrid, TwoLayerPlusGrid
from repro.datasets import DiskQuery, generate_uniform_rects, generate_window_queries
from repro.stats import QueryStats


def main() -> None:
    # 1. Data: 200K equal-area rectangles, uniformly distributed.
    data = generate_uniform_rects(200_000, area=1e-8, seed=7)
    print(f"dataset: {len(data):,} rectangles, avg extents {data.average_extents()}")

    # 2. Build the two-layer grid (Section III).
    t0 = time.perf_counter()
    index = TwoLayerGrid.build(data, partitions_per_dim=64)
    print(f"built {index!r} in {time.perf_counter() - t0:.2f}s")
    print(f"entries per class: {index.class_counts()}")

    # 3. A window query (Section IV) — results are duplicate-free by
    #    construction; no deduplication ever runs.
    window = Rect(0.40, 0.40, 0.45, 0.45)
    stats = QueryStats()
    ids = index.window_query(window, stats)
    print(f"\nwindow {window.as_tuple()}: {ids.shape[0]} results")
    print(f"work done: {stats}")

    # 4. A disk (distance) query (Section IV-E).
    disk = DiskQuery(0.5, 0.5, 0.02)
    ids = index.disk_query(disk)
    print(f"disk r={disk.radius}: {ids.shape[0]} results")

    # 5. Same grid, classic duplicate *elimination* — more rectangles
    #    scanned, more comparisons, plus a reference-point test per
    #    candidate.
    baseline = OneLayerGrid.build(data, partitions_per_dim=64)
    base_stats = QueryStats()
    baseline.window_query(window, base_stats)
    print(f"\n1-layer on the same query: {base_stats}")
    print(
        "2-layer scanned "
        f"{stats.rects_scanned}/{base_stats.rects_scanned} rectangles and did "
        f"{stats.comparisons}/{base_stats.comparisons} comparisons of the baseline."
    )

    # 6. Throughput comparison over a realistic workload.
    queries = generate_window_queries(data, 2_000, relative_area_percent=0.1, seed=1)
    for name, idx in (
        ("1-layer ", baseline),
        ("2-layer ", index),
        ("2-layer+", TwoLayerPlusGrid.build(data, partitions_per_dim=64)),
    ):
        t0 = time.perf_counter()
        for w in queries:
            idx.window_query(w)
        dt = time.perf_counter() - t0
        print(f"{name}: {len(queries) / dt:>10,.0f} queries/sec")


if __name__ == "__main__":
    main()
