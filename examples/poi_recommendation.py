"""Location-based analytics: influence regions for POI recommendation.

Scenario from the paper's introduction (citing [7]): a recommender keeps
a *spatial influence region* (an MBR) per mobile user and must answer,
for each candidate point of interest, "whose influence regions cover
this POI?" — thousands of such probes per second, in batch.

This example indexes one million influence regions with the two-layer
grid and evaluates a large batch of POI probes with both batch
strategies of Section VI (queries-based vs cache-conscious tiles-based),
then scales out with worker processes.

Run:  python examples/poi_recommendation.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import (
    TwoLayerGrid,
    evaluate_queries_based,
    evaluate_tiles_based,
    parallel_window_queries,
)
from repro.datasets import generate_zipf_rects, generate_window_queries


def main() -> None:
    # Influence regions are skewed like population: zipfian centres.
    print("generating 1M user influence regions (zipfian)...")
    regions = generate_zipf_rects(1_000_000, area=1e-8, seed=11)
    index = TwoLayerGrid.build(regions, partitions_per_dim=96)
    print(f"{index!r}")

    # POI probes: tiny windows around candidate POIs, following the same
    # skewed distribution (hot districts get probed most).
    probes = generate_window_queries(regions, 5_000, 0.01, seed=12)

    t0 = time.perf_counter()
    by_query = evaluate_queries_based(index, probes)
    t_queries = time.perf_counter() - t0

    t0 = time.perf_counter()
    by_tile = evaluate_tiles_based(index, probes)
    t_tiles = time.perf_counter() - t0

    # Identical answers, different memory access patterns.
    assert all(
        set(a.tolist()) == set(b.tolist()) for a, b in zip(by_query, by_tile)
    )
    audiences = np.array([len(r) for r in by_query])
    print(
        f"\n{len(probes):,} POI probes -> median audience "
        f"{int(np.median(audiences))}, max {audiences.max()} users"
    )
    print(f"queries-based batch: {len(probes) / t_queries:>10,.0f} probes/sec")
    print(f"tiles-based batch:   {len(probes) / t_tiles:>10,.0f} probes/sec")

    # Scale out across worker processes (Section VI / Fig. 11).
    for workers in (1, 2, 4):
        t0 = time.perf_counter()
        counts = parallel_window_queries(index, probes, workers=workers, method="tiles")
        dt = time.perf_counter() - t0
        assert np.array_equal(counts, audiences)
        print(f"tiles-based, {workers} worker(s): {len(probes) / dt:>10,.0f} probes/sec")


if __name__ == "__main__":
    main()
