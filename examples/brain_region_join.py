"""Spatial join: matching two object collections by overlap.

Scenario inspired by the paper's introduction (neuroscience: spatial
models of the brain [25], and mesh management [13]): given two large
collections of spatial objects — say, segmented cell bodies and imaging
regions of interest — find every overlapping pair.

The paper's conclusions name spatial joins over two-layer SOP indices as
future work; this repo implements them (`repro.core.join`): both inputs
are replicated onto one grid and only the nine class combinations that
cannot produce duplicates are evaluated per tile — no deduplication ever
runs.  The reference-point baseline generates border duplicates and
eliminates them afterwards.

Run:  python examples/brain_region_join.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import (
    brute_force_join,
    one_layer_spatial_join,
    two_layer_spatial_join,
)
from repro.datasets import generate_uniform_rects, generate_zipf_rects
from repro.stats import QueryStats


def main() -> None:
    # "Cell bodies": many small, clustered objects.
    cells = generate_zipf_rects(60_000, area=1e-7, seed=31)
    # "Regions of interest": fewer, larger boxes.
    rois = generate_uniform_rects(4_000, area=1e-4, seed=32)
    print(f"{len(cells):,} cells x {len(rois):,} ROIs")

    t0 = time.perf_counter()
    stats = QueryStats()
    pairs = two_layer_spatial_join(cells, rois, partitions_per_dim=64, stats=stats)
    t_two = time.perf_counter() - t0
    print(
        f"\n2-layer join: {pairs.shape[0]:,} overlapping pairs in {t_two:.2f}s "
        f"(dedup checks: {stats.dedup_checks})"
    )

    t0 = time.perf_counter()
    stats1 = QueryStats()
    baseline = one_layer_spatial_join(cells, rois, partitions_per_dim=64, stats=stats1)
    t_one = time.perf_counter() - t0
    print(
        f"refpoint join: {baseline.shape[0]:,} pairs in {t_one:.2f}s "
        f"(duplicates generated and eliminated: {stats1.duplicates_generated:,})"
    )

    assert set(map(tuple, pairs.tolist())) == set(map(tuple, baseline.tolist()))
    print(f"results identical; speedup {t_one / t_two:.2f}x")

    # Downstream analytics: ROI occupancy histogram.
    occupancy = np.bincount(pairs[:, 1], minlength=len(rois))
    print(
        f"\nROI occupancy: median {int(np.median(occupancy))} cells, "
        f"max {occupancy.max()} cells, {int((occupancy == 0).sum())} empty ROIs"
    )

    # Sanity on a small subsample against the quadratic oracle.
    small_cells = cells.slice(0, 2_000)
    small_rois = rois.slice(0, 200)
    got = set(map(tuple, two_layer_spatial_join(small_cells, small_rois, 32).tolist()))
    truth = set(map(tuple, brute_force_join(small_cells, small_rois).tolist()))
    assert got == truth
    print("subsample verified against the quadratic oracle")


if __name__ == "__main__":
    main()
