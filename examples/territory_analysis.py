"""Territory analysis with non-rectangular ranges and estimates.

Scenario: a delivery company partitions a city into service territories
that are *not* axis-aligned — a hexagonal downtown zone, a wedge
"north-west of the river" — and wants, per territory: how many customer
locations fall inside (estimated instantly for dashboards, exact when it
matters), and which ones.

Uses the §IV-E generalisation: duplicate-free two-layer queries over
arbitrary convex ranges, plus the class-A-histogram selectivity
estimator for instant approximate counts.

Run:  python examples/territory_analysis.py
"""

from __future__ import annotations

import math
import time

from repro.api import SpatialCollection
from repro.core import (
    ConvexPolygonRange,
    HalfPlaneStripRange,
    convex_range_query,
)
from repro.datasets import generate_zipf_rects


def hexagon(cx: float, cy: float, r: float):
    return [
        (cx + r * math.cos(math.pi / 3 * i), cy + r * math.sin(math.pi / 3 * i))
        for i in range(6)
    ]


def main() -> None:
    # Customer sites: small, population-skewed footprints.
    customers = generate_zipf_rects(300_000, area=1e-9, seed=77)
    col = SpatialCollection.from_dataset(customers)
    print(f"{col!r}\n")

    # -- territory 1: hexagonal downtown zone -----------------------------
    downtown = hexagon(0.12, 0.15, 0.08)
    t0 = time.perf_counter()
    inside = col.polygon(downtown)
    dt = time.perf_counter() - t0
    print(
        f"hexagonal downtown zone: {inside.shape[0]:,} customers "
        f"({dt * 1e3:.1f} ms, duplicate-free, no dedup step)"
    )

    # -- territory 2: a wedge (half-plane strip) --------------------------
    # North-west of the diagonal x + y <= 0.5, east of x >= 0.05.
    wedge = HalfPlaneStripRange([(1.0, 1.0, 0.5), (-1.0, 0.0, -0.05)])
    in_wedge = convex_range_query(col.index, wedge)
    print(f"NW wedge territory:      {in_wedge.shape[0]:,} customers")

    # -- dashboards: estimate vs exact count ------------------------------
    window = (0.05, 0.05, 0.25, 0.25)
    t0 = time.perf_counter()
    estimate = col.estimate(*window)
    t_est = time.perf_counter() - t0
    t0 = time.perf_counter()
    exact = col.count(*window)
    t_cnt = time.perf_counter() - t0
    print(
        f"\nplanning window {window}:\n"
        f"  histogram estimate: {estimate:10,.0f}  in {t_est * 1e6:7.0f} us\n"
        f"  exact count:        {exact:10,}  in {t_cnt * 1e6:7.0f} us\n"
        f"  estimate error: {abs(estimate - exact) / max(exact, 1):.1%}"
    )

    # Sanity: polygon answers match a brute-force re-check on a sample.
    q = ConvexPolygonRange(downtown)
    sample = inside[:500]
    assert all(
        q.intersects_rects(
            customers.xl[i : i + 1],
            customers.yl[i : i + 1],
            customers.xu[i : i + 1],
            customers.yu[i : i + 1],
        )[0]
        for i in sample
    )
    print("\nsample verified against the exact polygon predicate")


if __name__ == "__main__":
    main()
