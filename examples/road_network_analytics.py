"""Road-network analytics over exact linestring geometries.

Scenario from the paper's introduction: a GIS manages millions of road
segments (linestrings).  An analyst asks region questions — "which road
segments cross this map viewport?", "which are within 500 m of this
incident?" — that need *exact* geometry answers, not just MBR hits.

This example runs the full filter → secondary-filter → refine pipeline
(Section V) on a ROADS-like dataset and shows how the Lemma 5 secondary
filter removes >90% of the expensive exact-geometry tests.

Run:  python examples/road_network_analytics.py
"""

from __future__ import annotations

import time

from repro.core import RefinementBreakdown, RefinementEngine, TwoLayerGrid
from repro.datasets import (
    DiskQuery,
    generate_tiger_standin,
    generate_window_queries,
)


def main() -> None:
    # A scaled stand-in for TIGER ROADS: clustered linestrings whose MBR
    # statistics match Table III.
    print("generating ROADS-like linestrings (with exact geometries)...")
    roads = generate_tiger_standin(
        "ROADS", scale=1 / 1000, with_geometries=True, seed=2015
    )
    print(f"{len(roads):,} road segments; avg MBR extents {roads.average_extents()}")

    index = TwoLayerGrid.build(roads, partitions_per_dim=64)
    engine = RefinementEngine(index, roads)

    # -- viewport query: exact road segments crossing a map window --------
    viewport = generate_window_queries(roads, 1, 0.5, seed=3)[0]
    mbr_hits = index.window_query(viewport).shape[0]
    exact = engine.window(viewport, mode="refavoid_plus")
    print(
        f"\nviewport {tuple(round(v, 3) for v in viewport.as_tuple())}: "
        f"{mbr_hits} MBR candidates -> {exact.shape[0]} road segments truly inside"
    )

    # -- incident radius query: roads within a distance of a point ----------
    incident = DiskQuery(viewport.center()[0], viewport.center()[1], 0.01)
    nearby = engine.disk(incident, mode="refavoid")
    print(
        f"incident at {incident.cx:.3f},{incident.cy:.3f}: "
        f"{nearby.shape[0]} segments within radius {incident.radius}"
    )

    # -- why the secondary filter matters ----------------------------------
    workload = generate_window_queries(roads, 300, 0.1, seed=5)
    for mode in ("simple", "refavoid", "refavoid_plus"):
        breakdown = RefinementBreakdown()
        t0 = time.perf_counter()
        for w in workload:
            engine.window(w, mode, breakdown=breakdown)
        dt = time.perf_counter() - t0
        print(
            f"{mode:14s}: {len(workload) / dt:>8,.0f} q/s | "
            f"exact-geometry tests {breakdown.refinement_tests:>7,} | "
            f"avoided {breakdown.avoided_fraction:6.1%} of candidates"
        )


if __name__ == "__main__":
    main()
